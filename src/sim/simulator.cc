#include "sim/simulator.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <sstream>

#include "common/log.hh"

namespace prefsim
{

namespace
{

/// Cap on a single fast-forward / inert-walk window when the bus is
/// idle. Wide enough that it never splits a real window (traces are
/// far shorter), small enough that cycle_ + cap cannot overflow.
constexpr Cycle kMaxWindow = Cycle{1} << 30;

/// Frontier distance between batched catch-up flushes of lagging local
/// clocks when the Parallel engine has a shard pool: often enough that
/// the flushed spans stay cache-warm, rarely enough that the pool
/// hand-off cost amortises.
constexpr Cycle kShardFlushInterval = 4096;

/// Walk limit for a local clock's side-effect boundary (matches the
/// inert walk's own memo lookahead). A boundary capped here is a safe
/// conservative stand-in for the real one: reaching it catches the
/// processor up, re-walks from the live cursor, and costs at most one
/// workless exact cycle per span — while an uncapped walk would
/// traverse a long quiet tail (worst case the whole remaining trace)
/// whose far end a snoop is likely to invalidate anyway.
constexpr Cycle kBoundaryLookahead = 4096;

} // namespace

Simulator::Simulator(const ParallelTrace &trace, const SimConfig &config)
    : trace_(trace), config_(config),
      proc_stats_(trace.numProcs()),
      locks_(trace.numLocks),
      barriers_(static_cast<unsigned>(trace.numProcs()))
{
    if (trace.numProcs() == 0)
        prefsim_fatal("cannot simulate a trace with zero processors");
    if (trace.numProcs() > 32)
        prefsim_fatal("at most 32 processors supported (word masks)");

    mem_ = std::make_unique<MemorySystem>(
        static_cast<unsigned>(trace.numProcs()), config.geometry,
        config.timing, config.prefetchBufferDepth, proc_stats_,
        config.victimEntries, config.prefetchDataBufferEntries,
        config.protocol);

    const bool parallel = config.engine == SimEngine::Parallel;

    mem_->setWake([this, parallel](ProcId p, bool retry) {
        procs_[p]->wake(retry, cycle_);
        if (parallel) {
            // The woken processor is current as of the frontier (its
            // blocked span just settled) and must tick this very cycle
            // (completions fire before the rotation, as ever).
            local_[p] = cycle_;
            dirty_mask_ |= std::uint32_t{1} << p;
        }
    });

    auto release_all = [this, parallel](Cycle now) {
        // The release happens mid-rotation, from the last arriver's
        // tick: waiters whose service slot this cycle preceded the
        // releaser's have already spent the cycle waiting (lazy stall
        // accounting settles that in barrierRelease).
        const auto n = static_cast<unsigned>(procs_.size());
        const unsigned start = static_cast<unsigned>(now % n);
        const unsigned releaser_pos = (ticking_ + n - start) % n;
        for (auto &pr : procs_) {
            if (pr && pr->waitingAtBarrier()) {
                const unsigned pos = (pr->id() + n - start) % n;
                const bool before = pos < releaser_pos;
                pr->barrierRelease(now, before);
                if (parallel) {
                    // A waiter released before its slot resumes this
                    // very cycle; one whose slot already passed spent
                    // cycle `now` waiting (settled above) and resumes
                    // at now + 1.
                    local_[pr->id()] = before ? now + 1 : now;
                    dirty_mask_ |= std::uint32_t{1} << pr->id();
                }
            }
        }
        if (!warmup_done_ && config_.warmupEpisodes > 0 &&
            barriers_.episodes() >= config_.warmupEpisodes) {
            warmup_end_ = now + 1;
            resetStatsForWarmup();
        }
    };

    // The reference loop services every processor every cycle with
    // eager per-cycle stall counting; the event engine skips blocked
    // processors and settles their stalls arithmetically at wake. Both
    // produce bit-identical statistics — deliberately via different
    // code paths, so the differential suite actually checks the lazy
    // arithmetic against the straightforward accounting.
    tick_all_ = config.engine == SimEngine::CycleLoop;
    if (parallel) {
        local_.assign(trace.numProcs(), 0);
        eff_.assign(trace.numProcs(), 0);
        rot_.assign(trace.numProcs(), 0);
        dirty_mask_ =
            trace.numProcs() >= 32
                ? ~std::uint32_t{0}
                : (std::uint32_t{1} << trace.numProcs()) - 1;
        rot_active_ = dirty_mask_;
        const auto np = static_cast<unsigned>(trace.numProcs());
        if ((np & (np - 1)) == 0)
            proc_mask_ = np - 1; // Rotation start by mask, not modulo.
        mem_->setCatchUp([this](ProcId p) { hookTouch(p); });
        if (config.shards > 1) {
            pool_ = std::make_unique<ThreadPool>(
                std::min<unsigned>(config.shards,
                                   static_cast<unsigned>(trace.numProcs())));
        }
    }
    procs_.reserve(trace.numProcs());
    for (ProcId p = 0; p < trace.numProcs(); ++p) {
        procs_.push_back(std::make_unique<Processor>(
            p, trace.procs[p], *mem_, locks_, barriers_, proc_stats_[p],
            release_all));
        procs_.back()->setDoneCounter(&done_count_);
        procs_.back()->setEagerStalls(tick_all_);
        if (parallel) {
            // A spinner on a held lock is dropped from the exact-cycle
            // rotation entirely (rot_ kNoCycle: its retries provably
            // fail); the release is the one event that must put it
            // back. The hook fires mid-tick of the releaser, so
            // hookTouch's slot-order rule decides whether each
            // spinner's cycle_-cycle retry precedes or follows the
            // release — and the rotation's dirty fold services the
            // followers this very cycle, first in slot order winning
            // the acquisition race exactly as the cycle loop resolves
            // it.
            procs_.back()->setLockReleaseHook([this](SyncId lock) {
                const auto np = static_cast<ProcId>(procs_.size());
                for (ProcId q = 0; q < np; ++q) {
                    if (q != ticking_ && procs_[q]->spinning() &&
                        procs_[q]->spinLockId() == lock)
                        hookTouch(q);
                }
            });
        }
        if (procs_.back()->done())
            ++done_count_; // Empty trace: Done at construction.
    }

    if (config.obs) {
        // beginSession returns null when tracing is disabled or the
        // session budget is spent; metrics attach either way.
        trace_buf_ = config.obs->tracer.beginSession(
            static_cast<std::uint32_t>(trace.numProcs()),
            config.traceLabel.empty() ? "run" : config.traceLabel);
        if (config.profile) {
            profiler_ = std::make_unique<obs::AttributionProfiler>(
                static_cast<unsigned>(trace.numProcs()),
                config.traceLabel.empty() ? "run" : config.traceLabel);
        }
        if (config.critpath) {
            critpath_ = std::make_unique<obs::CritPathRecorder>(
                static_cast<unsigned>(trace.numProcs()),
                config.traceLabel.empty() ? "run" : config.traceLabel);
        }
        mem_->attachObs(*config.obs, trace_buf_.get(), profiler_.get(),
                        critpath_.get());
        for (auto &pr : procs_) {
            pr->setTrace(trace_buf_.get());
            pr->setCritPath(critpath_.get());
        }
        if (config.sampleInterval > 0) {
            sampler_ = std::make_unique<obs::IntervalSampler>(
                config.sampleInterval,
                static_cast<unsigned>(trace.numProcs()),
                config.traceLabel.empty() ? "run" : config.traceLabel);
            next_sample_ = sampler_->nextSampleCycle();
        }
    }
}

void
Simulator::resetStatsForWarmup()
{
    warmup_done_ = true;
    for (auto &ps : proc_stats_)
        ps = ProcStats{};
    mem_->resetBusStats();
    // Rebase the differencing so the reset does not show up as a huge
    // negative delta. The reset runs at the same mid-cycle point in
    // both engines (a barrier release is always cycle-exact), so the
    // baseline frame is identical too. Counters the reset does not
    // zero (prefetch first uses) are carried at their running values.
    if (sampler_)
        sampler_->rebase(captureSampleFrame(warmup_end_), warmup_end_);
    // The profile covers the measured window only, so its totals match
    // the post-warmup aggregates (Table 3). The reset runs with every
    // processor caught up to the barrier release in all three engines,
    // so the discarded warmup attribution is identical too.
    if (profiler_)
        profiler_->resetForWarmup();
}

obs::SampleFrame
Simulator::captureSampleFrame(Cycle at) const
{
    obs::SampleFrame f;
    f.cycle = at;
    const SplitBus &bus = mem_->bus();
    f.busBusy = bus.stats().busyCycles;
    f.busQueueDepth = bus.queuedOps();
    f.busActive = bus.activeTransfers();
    f.mshrs = mem_->outstandingMshrs();
    f.procs.reserve(procs_.size());
    for (ProcId p = 0; p < procs_.size(); ++p) {
        const ProcStats s = procs_[p]->sampledStats(at);
        const MissBreakdown &m = s.misses;
        f.missNonSharing += m.nonSharing();
        f.missInvalidation += m.invalidation();
        f.missFalseSharing += m.falseSharing;
        f.pfIssued += s.prefetchMisses;
        f.pfDropped += s.prefetchesDroppedResident +
                       s.prefetchesDroppedDuplicate;
        f.pfUseful += mem_->prefetchFirstUses(p);
        f.pfLate += m.prefetchInProgress;
        f.pfUseless += m.nonSharingPrefetched;
        f.pfCancelled += m.invalPrefetched;
        obs::SampleFrame::Proc pc;
        pc.busy = s.busy;
        pc.stallDemand = s.stallDemand;
        pc.stallUpgrade = s.stallUpgrade;
        pc.stallPrefetchQueue = s.stallPrefetchQueue;
        pc.spinLock = s.spinLock;
        pc.waitBarrier = s.waitBarrier;
        f.procs.push_back(pc);
    }
    return f;
}

std::uint64_t
Simulator::progressSum() const
{
    std::uint64_t sum =
        mem_->bus().stats().grantsDemand + mem_->bus().stats().grantsPrefetch;
    for (const auto &p : procs_)
        sum += p->progress();
    return sum;
}

void
Simulator::runExactCycle(bool bus_may_act)
{
    if (bus_may_act)
        mem_->tick(cycle_);
    // Rotate the processor service order so no processor systematically
    // wins same-cycle races for locks. Blocked processors are skipped —
    // their ticks are no-ops under lazy stall accounting — but the skip
    // is decided at visit time: a mid-rotation wake or barrier release
    // makes a processor runnable in this very cycle, as before.
    const auto n = static_cast<unsigned>(procs_.size());
    unsigned idx = static_cast<unsigned>(cycle_ % n);
    for (unsigned i = 0; i < n; ++i) {
        Processor &p = *procs_[idx];
        // The reference loop ticks every live processor (blocked ones
        // count their stall cycle eagerly); the event engine skips
        // them — their ticks are no-ops under lazy settlement.
        if (tick_all_ ? !p.done() : p.needsTick()) {
            ticking_ = idx;
            p.tick(cycle_);
        }
        if (++idx == n)
            idx = 0;
    }
    ticking_ = kNoProc;
    closeExactCycle();
}

void
Simulator::closeExactCycle()
{
    ++cycle_;
    if (cycle_ - last_progress_check_ >= config_.deadlockWindow) {
        const std::uint64_t p = progressSum();
        if (p == last_progress_value_) {
            std::ostringstream os;
            os << "no progress for " << config_.deadlockWindow
               << " cycles";
            reportDeadlock(os.str());
        }
        last_progress_value_ = p;
        last_progress_check_ = cycle_;
    }
}

bool
Simulator::stepCycle()
{
    if (allDone())
        return false;
    // A sample at cycle X captures state at the start of X, before the
    // bus tick and the processor rotation.
    maybeSample();
    runExactCycle();
    return !allDone();
}

bool
Simulator::stepEvent()
{
    if (allDone())
        return false;

    // The previous step may have left cycle_ exactly on a sample
    // boundary (via its closing runExactCycle).
    maybeSample();

    // Fast-forward across inert windows, chaining consecutive ones: a
    // burst that ends and advances into another Instr record (or into
    // the instruction cycle of a two-phase reference) opens a new
    // window immediately, with no exact cycle in between. The loop
    // drops to cycle-exact execution only when some processor's next
    // tick can have side effects (inert == 0) or a bus completion or
    // grant is due this very cycle.
    const std::size_t n = procs_.size();
    bool bus_due = true;
    for (;;) {
        // The next interesting cycle: the earliest bus *completion*
        // (fills and wakes touch processors, so it bounds the window)
        // or the first cycle a Running processor could have a side
        // effect. Grants touch only bus-internal queues and statistics
        // — nothing a processor can observe before the completion they
        // schedule — so they commute with the in-window quiet work and
        // are folded into the gap below. Everything in between is
        // provably inert (docs/simcore.md).
        const Cycle bus_comp = mem_->nextCompletionCycle(cycle_);
        if (bus_comp == cycle_)
            break; // A completion is due this very cycle.
        const Cycle bus_grant = mem_->nextGrantCycle(cycle_);
        if (bus_grant == cycle_) {
            // Grant-only cycle: tick the bus (no completion can fire —
            // the earliest is bus_comp) and re-derive the bounds. The
            // processors have not been serviced for this cycle yet;
            // the window starting here covers them.
            mem_->tick(cycle_);
            continue;
        }
        Cycle target = bus_comp;
        std::uint32_t ff_mask = 0; // Processors fastForward() advances.
        for (std::size_t i = 0; i < n; ++i) {
            const Processor &p = *procs_[i];
            // The trace walk need not look past the current window end
            // (the limit shrinks as earlier processors tighten it).
            const Cycle limit =
                target == kNoCycle ? kMaxWindow : target - cycle_;
            const Cycle inert = p.inertCycles(cycle_, limit);
            if (inert == 0) {
                target = cycle_;
                break;
            }
            if (p.needsTick())
                ff_mask |= std::uint32_t{1} << i;
            if (inert != kNoCycle && cycle_ + inert < target)
                target = cycle_ + inert;
        }
        if (target == kNoCycle && bus_grant == kNoCycle) {
            // Every processor is blocked and the bus is idle: nothing
            // can ever wake anyone. The cycle loop would spin to the
            // watchdog window and conclude the same.
            reportDeadlock("no progress possible: every processor is "
                           "blocked and the bus is idle");
        }
        if (target == cycle_) {
            // A processor forces exactness before the next bus event:
            // the bus provably does nothing this cycle.
            bus_due = false;
            break;
        }
        // A sample boundary bounds the window too: the frame must be
        // captured at its exact cycle, never skipped by a
        // fast-forward. Clamped after the deadlock check above — a
        // boundary is not progress, and letting it rescue a dead
        // machine would sample the same frame forever.
        if (next_sample_ < target)
            target = next_sample_;
        // Fold grant cycles inside the window: each grant schedules a
        // completion (no earlier than grant + occupancy), which may
        // tighten the window end. nextGrantCycle() advances strictly
        // after a tick performs the grants, so this terminates; it
        // also rescues the target == kNoCycle case (all processors
        // blocked, grants pending): the first folded grant schedules
        // the completion that bounds the window.
        for (Cycle g = bus_grant; g < target;
             g = mem_->nextGrantCycle(g)) {
            mem_->tick(g);
            target = std::min(target, mem_->nextCompletionCycle(g));
        }
        const Cycle gap = target - cycle_;
        for (std::uint32_t m = ff_mask; m != 0; m &= m - 1) {
            const auto i =
                static_cast<std::size_t>(std::countr_zero(m));
            procs_[i]->fastForward(gap, cycle_);
        }
        cycle_ = target;
        // A burst that ended exactly at the window boundary may have
        // retired the last record of every trace. Checked before
        // sampling, mirroring the cycle loop (a boundary coinciding
        // with the end of the run is emitted by finish(), not here).
        if (allDone())
            return false;
        maybeSample();
    }
    runExactCycle(bus_due);
    return !allDone();
}

void
Simulator::refreshEff(ProcId p)
{
    const std::uint32_t bit = std::uint32_t{1} << p;
    dirty_mask_ &= ~bit;
    const Processor &pr = *procs_[p];
    if (!pr.needsTick()) {
        // Done or blocked: woken only by a bus completion or another
        // processor's tick, never a rotation or frontier constraint.
        eff_[p] = kNoCycle;
        rot_[p] = kNoCycle;
        rot_active_ &= ~bit;
        return;
    }
    const Cycle inert = pr.inertCycles(local_[p], kBoundaryLookahead);
    if (inert == kNoCycle) {
        // Retries that provably fail never constrain the frontier
        // (fastForward bulk-adds the failed cycles). A spinner on a
        // held lock leaves the rotation too: only the release can
        // change its retry's outcome, and the release hook re-arms it
        // at exactly that tick. A stalled prefetch stays serviced at
        // every exact cycle — the completion that drains the queue is
        // only visible through the retry itself.
        eff_[p] = kNoCycle;
        if (pr.spinning()) {
            rot_[p] = kNoCycle;
            rot_active_ &= ~bit;
        } else {
            rot_[p] = 0;
            rot_active_ |= bit;
        }
        return;
    }
    eff_[p] = rot_[p] = local_[p] + inert;
    rot_active_ |= bit;
}

bool
Simulator::catchUpQuiet(ProcId p, Cycle to)
{
    if (to <= local_[p])
        return false;
    Processor &pr = *procs_[p];
    // Blocked and done processors need no replay at all: their stall
    // spans settle lazily at wake (fastForward would return without
    // doing anything). Spin/stall retries and Running quiet work go
    // through the real bulk replay.
    if (pr.needsTick())
        pr.fastForward(to - local_[p], local_[p]);
    local_[p] = to;
    return true;
}

void
Simulator::catchUp(ProcId p, Cycle to)
{
    // An advanced replay may have retired the trace's final record
    // (Done) or consumed memoised inert cycles; either way the cached
    // boundary is stale. (Skipping this lets a retirement keep a stale
    // finite eff_ and pin the frontier minimum below where it is.)
    if (catchUpQuiet(p, to))
        dirty_mask_ |= std::uint32_t{1} << p;
}

void
Simulator::catchUpAll(Cycle to)
{
    const auto n = static_cast<ProcId>(procs_.size());
    if (!pool_) {
        for (ProcId p = 0; p < n; ++p)
            catchUp(p, to);
        return;
    }
    // One task per shard, processors interleaved p % shards. The quiet
    // replays of distinct processors touch disjoint state (their own
    // cache, their own ProcStats slot, their own local_ element; the
    // only shared write is the atomic done counter), so the partition
    // needs no merge step — except the dirty flags, which live in one
    // shared mask: each worker accumulates its own and the main thread
    // folds them in after the join.
    const unsigned shards = pool_->numThreads();
    std::array<std::uint32_t, 32> worker_dirty{};
    for (unsigned s = 0; s < shards; ++s) {
        pool_->submit([this, s, n, shards, to, &worker_dirty] {
            std::uint32_t m = 0;
            for (ProcId p = s; p < n; p += shards) {
                if (catchUpQuiet(p, to))
                    m |= std::uint32_t{1} << p;
            }
            worker_dirty[s] = m;
        });
    }
    pool_->waitAll();
    for (unsigned s = 0; s < shards; ++s)
        dirty_mask_ |= worker_dirty[s];
}

void
Simulator::hookTouch(ProcId p)
{
    Cycle to = cycle_;
    if (ticking_ != kNoProc && ticking_ != p) {
        // Mid-rotation mutation from another processor's tick. When
        // p's service slot this cycle preceded the mutator's, p's
        // cycle-`cycle_` quiet work came first in cycle-loop order and
        // must be replayed against the pre-mutation cache state — and
        // the catch-up through cycle_ is legal precisely because p was
        // skipped at its slot as provably quiet past the frontier.
        // When p's slot is still to come, its cycle-`cycle_` work
        // follows the mutation, so the replay stops at the frontier.
        const auto n = static_cast<unsigned>(procs_.size());
        unsigned pos_p = static_cast<unsigned>(p) + n - rot_start_;
        if (pos_p >= n)
            pos_p -= n;
        unsigned pos_t = ticking_ + n - rot_start_;
        if (pos_t >= n)
            pos_t -= n;
        if (pos_p < pos_t)
            to = cycle_ + 1;
    }
    catchUpQuiet(p, to);
    // Even a zero-length catch-up expires the cached quiet promise:
    // the mutation may turn a promised quiet hit into a miss.
    dirty_mask_ |= std::uint32_t{1} << p;
}

bool
Simulator::serviceSlot(unsigned idx)
{
    const std::uint32_t bit = std::uint32_t{1} << idx;
    // A boundary invalidated since its last refresh (wakes, hook
    // touches, an earlier slot's tick) must be recomputed before the
    // due test: the mutation may have created business at this very
    // cycle.
    if (dirty_mask_ & bit)
        refreshEff(idx);
    // Spin/stall retries carry rot_ 0 (they retry every exact cycle,
    // like the event engine); woken or touched processors and due
    // local-clock boundaries land exactly on cycle_.
    if (rot_[idx] > cycle_)
        return false;
    catchUp(idx, cycle_);
    Processor &p = *procs_[idx];
    if (p.done())
        return false;
    ticking_ = idx;
    p.tick(cycle_);
    local_[idx] = cycle_ + 1;
    dirty_mask_ |= bit;
    return true;
}

void
Simulator::runExactCycleParallel(bool bus_may_act)
{
    if (bus_may_act)
        mem_->tick(cycle_);
    const auto n = static_cast<unsigned>(procs_.size());
    const unsigned idx =
        proc_mask_ != 0 ? static_cast<unsigned>(cycle_) & proc_mask_
                        : static_cast<unsigned>(cycle_ % n);
    rot_start_ = idx; // hookTouch derives slot positions from this.
    // Visit set: every processor whose boundary may be due this cycle.
    // A clean boundary answers the due test in the branchless build
    // below; a dirty one is stale (the bus tick above may have woken
    // or touched its owner), so dirty processors are visited
    // unconditionally and recomputed at their slot. The rotation then
    // services only the visited slots — on the contended fig2 run
    // fewer than two per exact cycle — instead of walking all n, which
    // is the engine's edge over runExactCycle: a lagging processor
    // past the frontier is skipped without even loading its state.
    std::uint32_t visit = dirty_mask_;
    for (std::uint32_t m = rot_active_ & ~dirty_mask_; m != 0; m &= m - 1) {
        const auto p = static_cast<unsigned>(std::countr_zero(m));
        if (rot_[p] <= cycle_)
            visit |= std::uint32_t{1} << p;
    }
    // Slots idx..n-1, then 0..idx-1: ascending bit order within each
    // half is exactly rotation order. A serviced tick can invalidate
    // boundaries ahead of it in the rotation (snoop hook touches, a
    // barrier release); folding dirty_mask_ into the not-yet-serviced
    // remainder after every tick reruns those due tests against the
    // refreshed boundary, as the cycle loop's in-order walk would.
    const std::uint32_t lo_mask = (std::uint32_t{1} << idx) - 1;
    std::uint32_t hi = visit & ~lo_mask;
    std::uint32_t lo = visit & lo_mask;
    while (hi != 0) {
        const auto p = static_cast<unsigned>(std::countr_zero(hi));
        hi &= hi - 1;
        if (serviceSlot(p)) {
            hi |= dirty_mask_ & ~lo_mask & ~((std::uint32_t{2} << p) - 1);
            lo |= dirty_mask_ & lo_mask;
        }
    }
    while (lo != 0) {
        const auto p = static_cast<unsigned>(std::countr_zero(lo));
        lo &= lo - 1;
        if (serviceSlot(p))
            lo |= dirty_mask_ & lo_mask & ~((std::uint32_t{2} << p) - 1);
    }
    ticking_ = kNoProc;
    closeExactCycle();
}

bool
Simulator::stepParallel()
{
    prefsim_assert(!local_.empty(),
                   "stepParallel() requires SimEngine::Parallel");
    if (allDone())
        return false;

    // The previous step may have left cycle_ exactly on a sample
    // boundary. The frame must capture every processor's state as of
    // the frontier, so lagging clocks settle first; a catch-up that
    // retires the last trace ends the run un-sampled, mirroring the
    // other engines (finish() emits the final frame).
    if (cycle_ == next_sample_) {
        catchUpAll(cycle_);
        if (allDone())
            return false;
        maybeSample();
    }

    // Advance the frontier to the next cycle that must execute
    // exactly: a bus completion, or the earliest local-clock
    // side-effect boundary. Unlike stepEvent, processors are NOT
    // fast-forwarded as the frontier moves — their local clocks lag
    // until a bus epoch, a snoop, a sample boundary or a shard flush
    // forces the quiet replay (docs/simcore.md gives the safety
    // argument; SplitBus::epochWindow is the analytical form of the
    // completion/grant bound computed here).
    const auto n = static_cast<ProcId>(procs_.size());
    bool bus_due = true;
    for (;;) {
        const Cycle bus_comp = mem_->nextCompletionCycle(cycle_);
        if (bus_comp == cycle_)
            break; // A completion is due this very cycle.
        const Cycle bus_grant = mem_->nextGrantCycle(cycle_);
        if (bus_grant == cycle_) {
            // Grant-only cycle: tick the bus and re-derive the bounds
            // (grants touch nothing a processor can observe before the
            // completion they schedule, so lagging clocks are safe).
            mem_->tick(cycle_);
            continue;
        }
        // Lazily refresh the invalidated side-effect boundaries, then
        // take the frontier bound E = min over processors in one tight
        // pass (eff_ is kNoCycle for every processor that cannot
        // constrain the window: blocked, done, spin/stall retries).
        for (std::uint32_t m = dirty_mask_; m != 0; m &= m - 1)
            refreshEff(static_cast<ProcId>(std::countr_zero(m)));
        Cycle e = kNoCycle;
        for (ProcId p = 0; p < n; ++p)
            e = std::min(e, eff_[p]);
        prefsim_assert(e >= cycle_,
                       "local-clock boundary regressed past the frontier");
        if (e == cycle_) {
            // A boundary is due at the frontier. Catch the due
            // processors up; a walk that ended at the trace's final
            // record retires here with no exact cycle — the frontier
            // is then the finish cycle, exactly as in the other
            // engines — while a genuine side effect demands exactness.
            bool exact = false;
            for (ProcId p = 0; p < n; ++p) {
                if (eff_[p] != cycle_)
                    continue;
                catchUp(p, cycle_);
                if (!procs_[p]->done())
                    exact = true;
            }
            if (allDone())
                return false;
            if (!exact)
                continue; // Pure retirements; re-derive the bounds.
            bus_due = false; // nextEventCycle proved the bus idle.
            break;
        }
        Cycle target = std::min(bus_comp, e);
        if (target == kNoCycle && bus_grant == kNoCycle) {
            // Every processor is blocked and the bus is idle: nothing
            // can ever wake anyone. The cycle loop would spin to the
            // watchdog window and conclude the same.
            reportDeadlock("no progress possible: every processor is "
                           "blocked and the bus is idle");
        }
        // A sample boundary bounds the frontier jump too (clamped
        // after the deadlock check: a boundary is not progress).
        if (next_sample_ < target)
            target = next_sample_;
        // Fold grant cycles inside the window, exactly as stepEvent
        // does: each grant schedules a completion that may tighten the
        // window end, and rescues the all-blocked-but-grants-pending
        // case.
        Cycle bus_next = bus_comp;
        for (Cycle g = bus_grant; g < target;
             g = mem_->nextGrantCycle(g)) {
            mem_->tick(g);
            bus_next = std::min(bus_next, mem_->nextCompletionCycle(g));
            target = std::min(target, bus_next);
        }
        cycle_ = target;
        // With a shard pool, periodically flush the lagging clocks so
        // the quiet replay runs wide across the workers instead of
        // serially inside the next snoop hook or sample boundary.
        if (pool_ && cycle_ - last_flush_ >= kShardFlushInterval) {
            last_flush_ = cycle_;
            catchUpAll(cycle_);
            if (allDone())
                return false;
        }
        if (cycle_ == next_sample_) {
            catchUpAll(cycle_);
            if (allDone())
                return false;
            maybeSample();
        }
        // Frontier landed on the completion bound: a completion is due
        // this very cycle, so skip the re-derivation pass (due
        // boundaries that coincide with it are picked up by the
        // rotation's due test, and catch-up dirt refreshes at its
        // slot). A boundary- or sample-bound jump re-enters the loop.
        if (cycle_ == bus_next)
            break;
    }
    runExactCycleParallel(bus_due);
    return !allDone();
}

SimStats
Simulator::run()
{
    if (config_.engine == SimEngine::CycleLoop) {
        while (stepCycle()) {
        }
    } else if (config_.engine == SimEngine::EventDriven) {
        while (stepEvent()) {
        }
    } else {
        while (stepParallel()) {
        }
    }
    const Cycle done_at = cycle_;
    // Close the time series before the drain below mutates the bus
    // statistics: the final partial row covers the tail of the run
    // proper. Every lazy stall has settled (all processors are Done),
    // so the frame needs no special casing.
    if (sampler_) {
        sampler_->finish(captureSampleFrame(done_at));
        config_.obs->timeseries.commit(sampler_->take());
        sampler_.reset();
        next_sample_ = kNoCycle;
    }
    // Drain in-flight writebacks so bus accounting is complete. These
    // cycles do not extend the measured execution time.
    Cycle drain = cycle_;
    while (mem_->busBusy()) {
        mem_->tick(drain);
        ++drain;
        if (drain - done_at > 10 * config_.timing.totalLatency + 10000)
            prefsim_panic("bus failed to drain after completion");
    }
    if (!locks_.allFree())
        prefsim_panic("locks still held at end of simulation");
    if (config_.warmupEpisodes > 0 && !warmup_done_) {
        prefsim_warn("trace ended before the configured warmup (",
                     config_.warmupEpisodes,
                     " barrier episodes); statistics cover the full run");
    }

    SimStats stats;
    // The measured window starts when warmup ended.
    stats.cycles = done_at - warmup_end_;
    stats.procs = proc_stats_;
    for (auto &ps : stats.procs) {
        ps.finishedAt =
            ps.finishedAt > warmup_end_ ? ps.finishedAt - warmup_end_ : 0;
    }
    stats.bus = mem_->bus().stats();
    // Commit the profile after the drain above: the drained writebacks'
    // grants attributed their occupancy, so the per-line bus cycles sum
    // exactly to the final BusStats::busyCycles.
    if (profiler_) {
        config_.obs->profile.commit(profiler_->take(warmup_end_));
        profiler_.reset();
    }
    // The critical-path walk wants absolute retirement cycles (the
    // recorder clamps everything to the measured window itself, so no
    // warmup reset is needed — pre-warmup pieces simply clip away).
    if (critpath_) {
        std::vector<Cycle> finished(proc_stats_.size());
        for (std::size_t p = 0; p < proc_stats_.size(); ++p)
            finished[p] = proc_stats_[p].finishedAt;
        config_.obs->critpath.commit(
            critpath_->take(warmup_end_, done_at, finished));
        critpath_.reset();
    }
    if (config_.obs && trace_buf_) {
        // Ring-buffer eviction is otherwise silent; the counter makes
        // truncated traces detectable in the telemetry document.
        config_.obs->metrics.counter("trace.dropped_events")
            .inc(trace_buf_->dropped());
        config_.obs->tracer.commit(std::move(trace_buf_));
    }
    return stats;
}

void
Simulator::reportDeadlock(const std::string &headline) const
{
    std::ostringstream os;
    os << headline << " at cycle " << cycle_ << "\n";
    for (ProcId p = 0; p < procs_.size(); ++p) {
        os << "  proc " << p << ": " << procs_[p]->describeState()
           << " progress=" << procs_[p]->progress() << "\n";
    }
    os << "  barrier arrivals: " << barriers_.arrivedCount()
       << ", episodes: " << barriers_.episodes();
    prefsim_panic(os.str());
}

SimStats
simulate(const ParallelTrace &trace, const SimConfig &config)
{
    Simulator sim(trace, config);
    return sim.run();
}

} // namespace prefsim
