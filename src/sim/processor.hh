/**
 * @file
 * The trace-driven processor model.
 *
 * Timing follows the paper (§3.3): one cycle per instruction plus one
 * cycle per data access when it hits; a demand miss blocks the CPU until
 * its fill arrives (the cache is lockup-free for prefetches only). A
 * prefetch instruction costs a single cycle and stalls only when the
 * 16-deep prefetch buffer is full. Locks spin without bus traffic;
 * barriers hold the processor until every processor arrives.
 */

#ifndef PREFSIM_SIM_PROCESSOR_HH
#define PREFSIM_SIM_PROCESSOR_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "obs/trace.hh"
#include "sim/memory_system.hh"
#include "sim/sim_stats.hh"
#include "sim/sync.hh"
#include "trace/trace.hh"

namespace prefsim
{

/** One simulated CPU executing its trace. */
class Processor
{
  public:
    /** Invoked by the last barrier arriver to release the others. */
    using ReleaseAllFn = std::function<void(Cycle)>;

    Processor(ProcId id, const Trace &trace, MemorySystem &mem,
              LockTable &locks, BarrierManager &barriers, ProcStats &stats,
              ReleaseAllFn release_all);

    /** Execute (at most) one cycle of work at cycle @p now. */
    void tick(Cycle now);

    /**
     * Wake from a memory-system stall at cycle @p now.
     * @param retry Re-execute the blocked access (vs. it was satisfied).
     */
    void wake(bool retry, Cycle now);

    /** Release from a barrier (all processors arrived). */
    void barrierRelease(Cycle now);

    bool done() const { return state_ == State::Done; }
    bool waitingAtBarrier() const { return state_ == State::WaitBarrier; }
    ProcId id() const { return id_; }

    /** Trace records retired plus partial progress (progress monitor). */
    std::uint64_t progress() const { return progress_; }

    /** Human-readable state (deadlock diagnostics). */
    std::string describeState() const;

    /** Attach this run's event sink (null detaches; no-op by default). */
    void setTrace(obs::TraceBuffer *t) { trace_buf_ = t; }

  private:
    enum class State : std::uint8_t
    {
        Running,      ///< Executing trace records.
        WaitMemory,   ///< Blocked in the memory system (fill/upgrade).
        SpinLock,     ///< Spinning on a held lock.
        WaitBarrier,  ///< Arrived at a barrier, waiting for the rest.
        StallPrefetch,///< Prefetch buffer full; reissuing each cycle.
        Done,         ///< Trace exhausted.
    };

    /** Advance to the next record. */
    void advance(Cycle now);

    /** Execute the data access of the current Read/Write record.
     *  @return true if the record completed. */
    bool executeAccess(Cycle now);

    /** Note a stall beginning (tracing bookkeeping; compiled out by
     *  default). The matching endStall() emits the stall as one span on
     *  this processor's track — a processor has at most one stall open
     *  at a time, so the spans nest trivially. */
    void
    markStall(const char *name, obs::TraceCat cat, Cycle now)
    {
#if PREFSIM_TRACING
        stall_name_ = name;
        stall_cat_ = cat;
        stall_begin_ = now;
#else
        (void)name;
        (void)cat;
        (void)now;
#endif
    }

    /** Emit the span opened by the last markStall(). */
    void
    endStall(Cycle now)
    {
        PREFSIM_TRACE(trace_buf_, span(id_, stall_name_, stall_cat_,
                                       stall_begin_, now));
        (void)now;
    }

    ProcId id_;
    const Trace &trace_;
    MemorySystem &mem_;
    LockTable &locks_;
    BarrierManager &barriers_;
    ProcStats &stats_;
    ReleaseAllFn release_all_;

    State state_ = State::Running;
    std::size_t index_ = 0;       ///< Current record.
    std::uint32_t instr_left_ = 0;///< Remaining count of an Instr record.
    bool in_access_phase_ = false;///< Ref record: instruction cycle done.
    std::uint64_t progress_ = 0;

    obs::TraceBuffer *trace_buf_ = nullptr;
    Cycle stall_begin_ = 0;       ///< Open-stall bookkeeping (tracing).
    const char *stall_name_ = "stall";
    obs::TraceCat stall_cat_ = obs::TraceCat::Exec;
};

} // namespace prefsim

#endif // PREFSIM_SIM_PROCESSOR_HH
