/**
 * @file
 * The trace-driven processor model.
 *
 * Timing follows the paper (§3.3): one cycle per instruction plus one
 * cycle per data access when it hits; a demand miss blocks the CPU until
 * its fill arrives (the cache is lockup-free for prefetches only). A
 * prefetch instruction costs a single cycle and stalls only when the
 * 16-deep prefetch buffer is full. Locks spin without bus traffic;
 * barriers hold the processor until every processor arrives.
 */

#ifndef PREFSIM_SIM_PROCESSOR_HH
#define PREFSIM_SIM_PROCESSOR_HH

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "obs/trace.hh"
#include "sim/memory_system.hh"
#include "sim/sim_stats.hh"
#include "sim/sync.hh"
#include "trace/trace.hh"

namespace prefsim
{

/** One simulated CPU executing its trace. */
class Processor
{
  public:
    /** Invoked by the last barrier arriver to release the others. */
    using ReleaseAllFn = std::function<void(Cycle)>;

    Processor(ProcId id, const Trace &trace, MemorySystem &mem,
              LockTable &locks, BarrierManager &barriers, ProcStats &stats,
              ReleaseAllFn release_all);

    /** Execute (at most) one cycle of work at cycle @p now. */
    void tick(Cycle now);

    /**
     * Wake from a memory-system stall at cycle @p now.
     * @param retry Re-execute the blocked access (vs. it was satisfied).
     */
    void wake(bool retry, Cycle now);

    /**
     * Release from a barrier (all processors arrived).
     * @param ticked_this_cycle This processor's slot in the service
     *        rotation came before the releasing processor's, i.e. it
     *        already spent cycle @p now waiting (lazy stall accounting
     *        settles waitBarrier here; see docs/simcore.md).
     */
    void barrierRelease(Cycle now, bool ticked_this_cycle);

    /**
     * Number of upcoming cycles this processor is *inert* for, capped
     * at @p limit: ticks that cannot acquire a lock, release one,
     * block, arrive at a barrier, issue a bus operation, or otherwise
     * affect another processor. A Running processor walks its trace:
     * Instr bursts, the instruction cycle of two-phase references, and
     * demand accesses that would hit quietly (see
     * MemorySystem::wouldHitQuietly), and prefetch accesses that would
     * drop quietly (wouldPrefetchDropQuietly) are all inert; the walk
     * stops at the first sync record, prefetch that would issue or
     * stall, or access that would miss, upgrade, or swap. Reaching the
     * end of the trace stops the
     * walk too — the cycle count up to Done bounds the window so the
     * final simulated cycle is exact in both engines. Blocked and Done
     * processors return kNoCycle: they never constrain the
     * fast-forward window (their wake-ups come from bus completions or
     * other processors' ticks, which bound the window separately). 0
     * means the next tick may have side effects and must execute
     * cycle-exactly.
     *
     * The walk result is memoized against the cache version (see
     * MemorySystem::cacheVersion): as long as nothing has changed this
     * processor's cache from outside, a previous walk's end point
     * stays valid and later queries are O(1). @p now must be the
     * current simulation cycle.
     *
     * The state dispatch is inline: the event loop calls this for
     * every processor at every fast-forward window boundary.
     */
    Cycle
    inertCycles(Cycle now, Cycle limit) const
    {
        switch (state_) {
          case State::Done:
          case State::WaitMemory:
          case State::WaitBarrier:
            // Woken by a bus completion or another processor's tick;
            // never a constraint on the fast-forward window.
            return kNoCycle;
          case State::SpinLock:
            // While the lock is held, per-cycle retries provably fail:
            // it can only be freed by a LockRelease, which executes in
            // an exact cycle (fastForward() bulk-adds the failed
            // retries). A released lock is grabbed at the very next
            // tick — and the release may have happened after this
            // processor's slot in the releasing cycle's rotation, so
            // it must force an exact cycle *now*, not merely rely on
            // the release cycle being exact.
            return locks_.holder(trace_[index_].sync) == kNoProc
                       ? 0
                       : kNoCycle;
          case State::StallPrefetch:
            // Retries fail until an MSHR frees, which only happens in
            // a bus completion — and those fire at the start of the
            // cycle, before the processor rotation, so the bus bound
            // on the fast-forward window already covers the
            // successful retry.
            return kNoCycle;
          case State::Running:
            // Memo fast path inline: the event loop queries every
            // processor at every window boundary, and most queries
            // re-read an unchanged walk (see runningInertCycles for
            // the walk itself and the memo write-back).
            if (inert_valid_ &&
                inert_version_ == mem_.cacheVersion(id_) &&
                inert_until_ > now) {
                const Cycle left = inert_until_ - now;
                if (left >= limit)
                    return limit;
                if (!inert_capped_)
                    return left;
            }
            return runningInertCycles(now, limit);
        }
        return 0;
    }

    /**
     * Retire @p n inert cycles [now, now+n) in one step, with stats
     * identical to n individual tick() calls. Only legal when @p n <=
     * inertCycles(n) for Running processors — quiet hits promised by
     * the inert walk are executed for real against the memory system
     * here (their effects are own-cache-only, so no ordering with
     * other processors' windows arises). Blocked processors accept any
     * span (their counters are either bulk-added here — SpinLock /
     * StallPrefetch, whose per-cycle retries provably fail during an
     * inert window — or settled lazily at wake).
     */
    void fastForward(Cycle n, Cycle now);

    /** True when tick() would do any work (Running, or retrying a
     *  lock/prefetch each cycle). WaitMemory/WaitBarrier/Done ticks
     *  are no-ops — their stall time is settled at wake — so the
     *  simulator skips them entirely. */
    bool
    needsTick() const
    {
        return state_ == State::Running || state_ == State::SpinLock ||
               state_ == State::StallPrefetch;
    }

    /** Attach the simulator's finished-processor counter (incremented
     *  once when this processor retires its last record — possibly
     *  from a shard worker, when the parallel engine's catch-up
     *  reaches the end of the trace; hence atomic). */
    void setDoneCounter(std::atomic<std::size_t> *c) { done_counter_ = c; }

    /**
     * Select eager (per-cycle) stall accounting: every blocked tick
     * increments its bucket immediately and the wake-time settlement
     * adds zero. The CycleLoop oracle enables this so the differential
     * suite verifies the event engine's lazy settlement against
     * straightforward counting rather than sharing its arithmetic;
     * results are bit-identical by construction.
     */
    void setEagerStalls(bool eager) { eager_stalls_ = eager; }

    /**
     * Install a hook fired right after this processor executes a
     * LockRelease record, with the released lock's id. The parallel
     * engine uses it to re-arm the spinners parked on that lock: their
     * retries are provably futile while the lock is held, so the
     * engine stops servicing them at exact cycles and the release is
     * the one event that must put them back in the rotation.
     */
    void setLockReleaseHook(std::function<void(SyncId)> fn)
    {
        lock_release_ = std::move(fn);
    }

    bool done() const { return state_ == State::Done; }
    bool waitingAtBarrier() const { return state_ == State::WaitBarrier; }

    /** True while spinning on a held lock (SpinLock state). */
    bool spinning() const { return state_ == State::SpinLock; }

    /** The lock being spun on; only meaningful while spinning(). */
    SyncId spinLockId() const { return trace_[index_].sync; }

    ProcId id() const { return id_; }

    /** Trace records retired plus partial progress (progress monitor). */
    std::uint64_t progress() const { return progress_; }

    /**
     * Statistics view as of the start of cycle @p now, for interval
     * sampling. With lazy stall accounting a blocked processor's bucket
     * lags reality between entry and wake; this settles the open span
     * into a copy (the entering tick pre-counted its own cycle, so the
     * pending amount is `now - stall_anchor_`) without touching the
     * live counters or the anchor. With eager accounting (the
     * CycleLoop oracle) the live counters are already current and the
     * copy is returned unchanged — so both engines sample identical
     * values at identical cycles, which tests/test_timeseries.cc
     * asserts byte-for-byte.
     */
    ProcStats
    sampledStats(Cycle now) const
    {
        ProcStats s = stats_;
        if (!eager_stalls_ && stall_bucket_ != nullptr &&
            (state_ == State::WaitMemory ||
             state_ == State::WaitBarrier) &&
            now > stall_anchor_) {
            // The open bucket is a field of stats_; mirror the pending
            // span onto the same field of the copy by offset.
            const auto off =
                reinterpret_cast<const char *>(stall_bucket_) -
                reinterpret_cast<const char *>(&stats_);
            *reinterpret_cast<Cycle *>(reinterpret_cast<char *>(&s) +
                                       off) += now - stall_anchor_;
        }
        return s;
    }

    /** Human-readable state (deadlock diagnostics). */
    std::string describeState() const;

    /** Attach this run's event sink (null detaches; no-op by default). */
    void setTrace(obs::TraceBuffer *t) { trace_buf_ = t; }

    /** Attach this run's critical-path recorder (null detaches). All
     *  hook sites are exact-cycle state transitions on the engine's
     *  main thread — never inside quiet fast-forward replay. */
    void setCritPath(obs::CritPathRecorder *r) { critpath_ = r; }

  private:
    enum class State : std::uint8_t
    {
        Running,      ///< Executing trace records.
        WaitMemory,   ///< Blocked in the memory system (fill/upgrade).
        SpinLock,     ///< Spinning on a held lock.
        WaitBarrier,  ///< Arrived at a barrier, waiting for the rest.
        StallPrefetch,///< Prefetch buffer full; reissuing each cycle.
        Done,         ///< Trace exhausted.
    };

    /** Advance to the next record. */
    void advance(Cycle now);

    /** The Running-state trace walk behind inertCycles(). */
    Cycle runningInertCycles(Cycle now, Cycle limit) const;

    /** Arm the lazy stall clock: the entering tick (cycle @p now) has
     *  already counted itself into @p bucket, so the settlement at wake
     *  covers [now + 1, wake). */
    void
    beginLazyStall(Cycle *bucket, Cycle now)
    {
        stall_bucket_ = bucket;
        stall_anchor_ = now + 1;
    }

    /** Execute the data access of the current Read/Write record.
     *  @return true if the record completed. */
    bool executeAccess(Cycle now);

    /** Note a stall beginning (tracing bookkeeping; compiled out by
     *  default). The matching endStall() emits the stall as one span on
     *  this processor's track — a processor has at most one stall open
     *  at a time, so the spans nest trivially. */
    void
    markStall(const char *name, obs::TraceCat cat, Cycle now)
    {
#if PREFSIM_TRACING
        stall_name_ = name;
        stall_cat_ = cat;
        stall_begin_ = now;
#else
        (void)name;
        (void)cat;
        (void)now;
#endif
    }

    /** Emit the span opened by the last markStall(). */
    void
    endStall(Cycle now)
    {
        PREFSIM_TRACE(trace_buf_, span(id_, stall_name_, stall_cat_,
                                       stall_begin_, now));
        (void)now;
    }

    ProcId id_;
    const Trace &trace_;
    MemorySystem &mem_;
    LockTable &locks_;
    BarrierManager &barriers_;
    ProcStats &stats_;
    ReleaseAllFn release_all_;
    /** Fired after a LockRelease executes (see setLockReleaseHook). */
    std::function<void(SyncId)> lock_release_;

    State state_ = State::Running;
    std::size_t index_ = 0;       ///< Current record.
    std::uint32_t instr_left_ = 0;///< Remaining count of an Instr record.
    bool in_access_phase_ = false;///< Ref record: instruction cycle done.
    std::uint64_t progress_ = 0;

    /** @name Lazy stall accounting (WaitMemory / WaitBarrier).
     * Blocked ticks are no-ops; the time is settled arithmetically at
     * wake as `now - stall_anchor_`. The anchor is entry cycle + 1
     * because the entering tick pre-counts its own cycle. The bucket a
     * WaitMemory stall lands in (demand vs. upgrade) is chosen once at
     * entry from the AccessResult instead of re-deriving it from the
     * cache state every cycle. @{ */
    Cycle stall_anchor_ = 0;
    Cycle *stall_bucket_ = nullptr;
    /** @} */

    /** Simulator's count of Done processors (may be null in unit
     *  tests driving a Processor directly). */
    std::atomic<std::size_t> *done_counter_ = nullptr;

    /** Count blocked cycles eagerly (CycleLoop oracle; see
     *  setEagerStalls). */
    bool eager_stalls_ = false;

    /** @name Inert-walk memo (see inertCycles).
     * A completed walk's end point, valid while the cache version is
     * unchanged and the current cycle is still before the end point —
     * self progression cannot invalidate it (fast-forward and exact
     * ticks both follow the walked path), and the processor's own
     * walk-ending action expires it by advancing past inert_until_.
     * inert_capped_ marks a walk cut short by its lookahead cap rather
     * than a real boundary. @{ */
    mutable Cycle inert_until_ = 0;
    mutable std::uint64_t inert_version_ = 0;
    mutable bool inert_valid_ = false;
    mutable bool inert_capped_ = false;
    /** @} */

    obs::TraceBuffer *trace_buf_ = nullptr;
    obs::CritPathRecorder *critpath_ = nullptr;
    Cycle stall_begin_ = 0;       ///< Open-stall bookkeeping (tracing).
    const char *stall_name_ = "stall";
    obs::TraceCat stall_cat_ = obs::TraceCat::Exec;
};

} // namespace prefsim

#endif // PREFSIM_SIM_PROCESSOR_HH
