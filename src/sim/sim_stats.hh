/**
 * @file
 * Simulation statistics: the paper's measurement vocabulary.
 *
 * Terminology follows the paper's footnote 1 exactly:
 *  - *misses* (total miss rate) cover prefetch and non-prefetch accesses
 *    that do not hit in the cache;
 *  - *CPU misses* are misses on non-prefetch accesses — the ones the
 *    processor observes;
 *  - *non-sharing* CPU misses exclude invalidation misses;
 *  - *prefetch misses* occur on prefetch accesses only;
 *  - the *adjusted* CPU miss rate excludes prefetch-in-progress misses.
 *
 * Rates are normalised by demand references, which is constant across
 * strategies for a given workload — that makes the total miss rate
 * directly proportional to the demand placed on the bus, which is how
 * the paper uses it.
 */

#ifndef PREFSIM_SIM_SIM_STATS_HH
#define PREFSIM_SIM_SIM_STATS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mem/split_bus.hh"

namespace prefsim
{

/** CPU-miss components (the five categories of Figure 3). */
struct MissBreakdown
{
    /** Non-sharing miss, no prefetch covered it. */
    std::uint64_t nonSharingNotPrefetched = 0;
    /** Non-sharing miss; prefetched data was replaced before use. */
    std::uint64_t nonSharingPrefetched = 0;
    /** Invalidation miss, no prefetch covered it. */
    std::uint64_t invalNotPrefetched = 0;
    /** Invalidation miss; prefetched data was invalidated before use. */
    std::uint64_t invalPrefetched = 0;
    /** The access found its line's prefetch still in flight and waited
     *  for the residual latency. */
    std::uint64_t prefetchInProgress = 0;

    /** Of the invalidation misses, those whose invalidating write hit a
     *  word the local processor had not accessed (false sharing). */
    std::uint64_t falseSharing = 0;

    std::uint64_t
    invalidation() const
    {
        return invalNotPrefetched + invalPrefetched;
    }

    std::uint64_t
    nonSharing() const
    {
        return nonSharingNotPrefetched + nonSharingPrefetched;
    }

    /** All CPU misses (the five categories). */
    std::uint64_t
    cpu() const
    {
        return nonSharing() + invalidation() + prefetchInProgress;
    }

    /** CPU misses excluding prefetch-in-progress. */
    std::uint64_t
    adjustedCpu() const
    {
        return nonSharing() + invalidation();
    }

    MissBreakdown &operator+=(const MissBreakdown &o);
};

/** Per-processor execution accounting. */
struct ProcStats
{
    /** @name Cycle breakdown (sums to finishedAt). @{ */
    Cycle busy = 0;              ///< Instructions retired + hit accesses.
    Cycle stallDemand = 0;       ///< Blocked on a demand fill.
    Cycle stallUpgrade = 0;      ///< Blocked on an upgrade (write to S).
    Cycle stallPrefetchQueue = 0;///< Prefetch buffer full.
    Cycle spinLock = 0;          ///< Spinning on a held lock.
    Cycle waitBarrier = 0;       ///< Waiting at a barrier.
    /** @} */

    std::uint64_t demandRefs = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /** Prefetch instructions executed. */
    std::uint64_t prefetchesExecuted = 0;
    /** Prefetches that went to the bus (prefetch misses). */
    std::uint64_t prefetchMisses = 0;
    /** Prefetches dropped because the line was resident. */
    std::uint64_t prefetchesDroppedResident = 0;
    /** Prefetches dropped because a fill was already outstanding. */
    std::uint64_t prefetchesDroppedDuplicate = 0;

    /** Upgrade (invalidate) operations issued by this processor. */
    std::uint64_t upgradesIssued = 0;

    /** Misses satisfied by the victim buffer (one-cycle swap, no bus
     *  operation; only with SimConfig::victimEntries > 0). */
    std::uint64_t victimHits = 0;

    /** Demand accesses satisfied by promoting a line from the
     *  non-snooping prefetch data buffer (buffer-target mode only). */
    std::uint64_t prefetchBufferHits = 0;
    /** Remote operations that touched a line parked in the non-snooping
     *  prefetch buffer. Real hardware would have served stale data; the
     *  simulator invalidates the entry and counts the event — each one
     *  is a line the compiler should not have buffered (§3.1). */
    std::uint64_t bufferProtectionEvents = 0;

    MissBreakdown misses;

    /** Cycle this processor retired its last trace record. */
    Cycle finishedAt = 0;

    /** Fraction of this processor's run spent doing useful work. */
    double
    utilization() const
    {
        return finishedAt ? static_cast<double>(busy) /
                                static_cast<double>(finishedAt)
                          : 0.0;
    }
};

/** Results of one simulation run. */
struct SimStats
{
    /** Execution time: the cycle the last processor finished. */
    Cycle cycles = 0;
    std::vector<ProcStats> procs;
    BusStats bus;

    /** @name Aggregates over all processors. @{ */
    std::uint64_t totalDemandRefs() const;
    std::uint64_t totalPrefetchesExecuted() const;
    std::uint64_t totalPrefetchMisses() const;
    std::uint64_t totalUpgrades() const;
    MissBreakdown totalMisses() const;

    /** CPU miss rate: CPU misses / demand references. */
    double cpuMissRate() const;
    /** Adjusted CPU miss rate (paper Fig 1). */
    double adjustedCpuMissRate() const;
    /**
     * Total miss rate: line fetches / demand references. A fetch is an
     * adjusted CPU miss or an issued prefetch; prefetch-in-progress
     * waits piggyback on a fetch already counted, so they are excluded.
     * This is the metric the paper uses as "indicative of the demand at
     * the bottleneck component of the machine" (§4.2).
     */
    double totalMissRate() const;
    /** Invalidation miss rate (paper Table 3). */
    double invalidationMissRate() const;
    /** False-sharing miss rate (paper Table 3). */
    double falseSharingMissRate() const;
    /** Data-bus utilisation (paper Table 2). */
    double busUtilization() const;
    /** Mean per-processor utilisation (paper §4.2). */
    double avgProcUtilization() const;
    /** @} */
};

} // namespace prefsim

#endif // PREFSIM_SIM_SIM_STATS_HH
