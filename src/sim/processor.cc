#include "sim/processor.hh"

#include "common/log.hh"

namespace prefsim
{

Processor::Processor(ProcId id, const Trace &trace, MemorySystem &mem,
                     LockTable &locks, BarrierManager &barriers,
                     ProcStats &stats, ReleaseAllFn release_all)
    : id_(id), trace_(trace), mem_(mem), locks_(locks),
      barriers_(barriers), stats_(stats),
      release_all_(std::move(release_all))
{
    if (trace_.empty()) {
        state_ = State::Done;
        stats_.finishedAt = 0;
    } else if (trace_[0].kind == RecordKind::Instr) {
        instr_left_ = trace_[0].count;
    }
}

void
Processor::advance(Cycle now)
{
    ++index_;
    ++progress_;
    in_access_phase_ = false;
    if (index_ >= trace_.size()) {
        state_ = State::Done;
        stats_.finishedAt = now + 1; // This cycle was the last retired.
        return;
    }
    if (trace_[index_].kind == RecordKind::Instr)
        instr_left_ = trace_[index_].count;
}

bool
Processor::executeAccess(Cycle now)
{
    const TraceRecord &r = trace_[index_];
    const bool is_write = r.kind == RecordKind::Write;
    const AccessResult res = mem_.demandAccess(id_, r.addr, is_write, now);
    switch (res) {
      case AccessResult::Hit:
        ++stats_.busy;
        return true;
      case AccessResult::VictimHit:
        // The line was swapped in from the victim buffer; the access
        // re-executes next cycle and hits (one-cycle penalty).
        ++stats_.stallDemand;
        return false;
      case AccessResult::MissWait:
        state_ = State::WaitMemory;
        ++stats_.stallDemand;
        markStall("stall_miss", obs::TraceCat::Exec, now);
        return false;
      case AccessResult::UpgradeWait:
        state_ = State::WaitMemory;
        ++stats_.stallUpgrade;
        markStall("stall_upgrade", obs::TraceCat::Exec, now);
        return false;
      case AccessResult::InProgressWait:
        state_ = State::WaitMemory;
        ++stats_.stallDemand;
        markStall("stall_inflight_prefetch", obs::TraceCat::Exec, now);
        return false;
    }
    prefsim_panic("unknown access result");
}

void
Processor::tick(Cycle now)
{
    switch (state_) {
      case State::Done:
        return;
      case State::WaitMemory: {
        // Attribute the stalled cycle to the right bucket. We cannot see
        // which from here, so the entry points pre-counted the first
        // cycle; subsequent cycles are counted as generic demand stall.
        const TraceRecord &r = trace_[index_];
        if (isDemandRef(r.kind) && r.kind == RecordKind::Write &&
            mem_.cache(id_).stateOf(r.addr) == LineState::Shared) {
            ++stats_.stallUpgrade;
        } else {
            ++stats_.stallDemand;
        }
        return;
      }
      case State::WaitBarrier:
        ++stats_.waitBarrier;
        return;
      case State::SpinLock: {
        const TraceRecord &r = trace_[index_];
        if (locks_.tryAcquire(r.sync, id_)) {
            ++stats_.busy;
            state_ = State::Running;
            endStall(now);
            PREFSIM_TRACE(trace_buf_,
                          instant(id_, "lock_acquire", obs::TraceCat::Sync,
                                  now, kNoAddr, r.sync));
            advance(now);
        } else {
            ++stats_.spinLock;
        }
        return;
      }
      case State::StallPrefetch: {
        const TraceRecord &r = trace_[index_];
        const PrefetchResult res = mem_.prefetchAccess(
            id_, r.addr, r.kind == RecordKind::PrefetchExcl, now);
        if (res == PrefetchResult::BufferFull) {
            ++stats_.stallPrefetchQueue;
        } else {
            // The stalled prefetch instruction finally issues: this
            // cycle retires it.
            ++stats_.busy;
            ++stats_.prefetchesExecuted;
            state_ = State::Running;
            endStall(now);
            advance(now);
        }
        return;
      }
      case State::Running:
        break;
    }

    const TraceRecord &r = trace_[index_];
    switch (r.kind) {
      case RecordKind::Instr:
        ++stats_.busy;
        if (instr_left_ > 1) {
            --instr_left_;
        } else {
            instr_left_ = 0;
            advance(now);
        }
        return;

      case RecordKind::Read:
      case RecordKind::Write:
        if (!in_access_phase_) {
            // Cycle 1: the instruction itself.
            ++stats_.busy;
            ++stats_.demandRefs;
            if (r.kind == RecordKind::Read)
                ++stats_.reads;
            else
                ++stats_.writes;
            in_access_phase_ = true;
            return;
        }
        // Cycle 2(+): the data access.
        if (executeAccess(now))
            advance(now);
        return;

      case RecordKind::Prefetch:
      case RecordKind::PrefetchExcl: {
        // Paper 3.1: the overhead is "a single instruction and the
        // prefetch access itself" — one instruction cycle, then one
        // cycle issuing the access (the fill is asynchronous).
        if (!in_access_phase_) {
            ++stats_.busy;
            in_access_phase_ = true;
            return;
        }
        const PrefetchResult res = mem_.prefetchAccess(
            id_, r.addr, r.kind == RecordKind::PrefetchExcl, now);
        if (res == PrefetchResult::BufferFull) {
            ++stats_.stallPrefetchQueue;
            state_ = State::StallPrefetch;
            markStall("stall_prefetch_buffer", obs::TraceCat::Exec, now);
        } else {
            ++stats_.busy;
            ++stats_.prefetchesExecuted;
            advance(now);
        }
        return;
      }

      case RecordKind::LockAcquire:
        if (locks_.tryAcquire(r.sync, id_)) {
            ++stats_.busy;
            PREFSIM_TRACE(trace_buf_,
                          instant(id_, "lock_acquire", obs::TraceCat::Sync,
                                  now, kNoAddr, r.sync));
            advance(now);
        } else {
            ++stats_.spinLock;
            state_ = State::SpinLock;
            markStall("spin_lock", obs::TraceCat::Sync, now);
        }
        return;

      case RecordKind::LockRelease:
        ++stats_.busy;
        locks_.release(r.sync, id_);
        PREFSIM_TRACE(trace_buf_,
                      instant(id_, "lock_release", obs::TraceCat::Sync,
                              now, kNoAddr, r.sync));
        advance(now);
        return;

      case RecordKind::Barrier:
        ++stats_.busy;
        PREFSIM_TRACE(trace_buf_,
                      instant(id_, "barrier_arrive", obs::TraceCat::Sync,
                              now, kNoAddr, r.sync));
        if (barriers_.arrive(r.sync, id_)) {
            // Last arrival: everyone proceeds.
            advance(now);
            if (release_all_)
                release_all_(now);
        } else {
            state_ = State::WaitBarrier;
            markStall("wait_barrier", obs::TraceCat::Sync, now);
        }
        return;
    }
    prefsim_panic("unknown record kind");
}

void
Processor::wake(bool retry, Cycle now)
{
    prefsim_assert(state_ == State::WaitMemory,
                   "wake() on proc ", id_, " in state ", describeState());
    state_ = State::Running;
    endStall(now);
    ++progress_;
    if (!retry) {
        // The blocked access was satisfied by the completing operation.
        advance(now);
    }
    // Otherwise stay on the current record in its access phase; the next
    // tick re-executes the access (same cycle: the bus ticks first).
}

void
Processor::barrierRelease(Cycle now)
{
    prefsim_assert(state_ == State::WaitBarrier,
                   "barrierRelease() on proc ", id_, " in state ",
                   describeState());
    state_ = State::Running;
    endStall(now);
    ++progress_;
    advance(now);
}

std::string
Processor::describeState() const
{
    switch (state_) {
      case State::Running:
        return "Running";
      case State::WaitMemory:
        return "WaitMemory";
      case State::SpinLock:
        return "SpinLock";
      case State::WaitBarrier:
        return "WaitBarrier";
      case State::StallPrefetch:
        return "StallPrefetch";
      case State::Done:
        return "Done";
    }
    return "?";
}

} // namespace prefsim
