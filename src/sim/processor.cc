#include "sim/processor.hh"

#include <algorithm>

#include "common/log.hh"

namespace prefsim
{

Processor::Processor(ProcId id, const Trace &trace, MemorySystem &mem,
                     LockTable &locks, BarrierManager &barriers,
                     ProcStats &stats, ReleaseAllFn release_all)
    : id_(id), trace_(trace), mem_(mem), locks_(locks),
      barriers_(barriers), stats_(stats),
      release_all_(std::move(release_all))
{
    if (trace_.empty()) {
        state_ = State::Done;
        stats_.finishedAt = 0;
    } else if (trace_[0].kind == RecordKind::Instr) {
        instr_left_ = trace_[0].count;
    }
}

void
Processor::advance(Cycle now)
{
    ++index_;
    ++progress_;
    in_access_phase_ = false;
    if (index_ >= trace_.size()) {
        state_ = State::Done;
        stats_.finishedAt = now + 1; // This cycle was the last retired.
        if (done_counter_)
            ++*done_counter_;
        return;
    }
    if (trace_[index_].kind == RecordKind::Instr)
        instr_left_ = trace_[index_].count;
}

bool
Processor::executeAccess(Cycle now)
{
    const TraceRecord &r = trace_[index_];
    const bool is_write = r.kind == RecordKind::Write;
    const AccessResult res = mem_.demandAccess(id_, r.addr, is_write, now);
    switch (res) {
      case AccessResult::Hit:
        ++stats_.busy;
        return true;
      case AccessResult::VictimHit:
        // The line was swapped in from the victim buffer; the access
        // re-executes next cycle and hits (one-cycle penalty).
        ++stats_.stallDemand;
        return false;
      case AccessResult::MissWait:
        state_ = State::WaitMemory;
        ++stats_.stallDemand;
        beginLazyStall(&stats_.stallDemand, now);
        markStall("stall_miss", obs::TraceCat::Exec, now);
        return false;
      case AccessResult::UpgradeWait:
        state_ = State::WaitMemory;
        ++stats_.stallUpgrade;
        beginLazyStall(&stats_.stallUpgrade, now);
        markStall("stall_upgrade", obs::TraceCat::Exec, now);
        return false;
      case AccessResult::InProgressWait:
        state_ = State::WaitMemory;
        ++stats_.stallDemand;
        beginLazyStall(&stats_.stallDemand, now);
        markStall("stall_inflight_prefetch", obs::TraceCat::Exec, now);
        return false;
    }
    prefsim_panic("unknown access result");
}

void
Processor::tick(Cycle now)
{
    switch (state_) {
      case State::Done:
        return;
      case State::WaitMemory:
      case State::WaitBarrier:
        // Reference (eager) accounting: count each blocked cycle as it
        // passes and advance the anchor with it, so the settlement at
        // wake()/barrierRelease() degenerates to adding zero. The
        // CycleLoop oracle runs this mode so differential tests check
        // the event engine's lazy settlement arithmetic against simple
        // per-cycle counting instead of sharing it.
        if (eager_stalls_) {
            ++*stall_bucket_;
            ++stall_anchor_;
            return;
        }
        // Lazy stall accounting: blocked ticks are no-ops; the stalled
        // span is settled in one subtraction at wake()/barrierRelease()
        // against the bucket chosen at entry. (Skipping the per-cycle
        // cache stateOf() probe the old bucket attribution needed is a
        // large share of the event-driven engine's speedup.)
        return;
      case State::SpinLock: {
        const TraceRecord &r = trace_[index_];
        if (locks_.tryAcquire(r.sync, id_)) {
            ++stats_.busy;
            state_ = State::Running;
            endStall(now);
            if (critpath_)
                critpath_->lockAcquired(id_, r.sync, now);
            PREFSIM_TRACE(trace_buf_,
                          instant(id_, "lock_acquire", obs::TraceCat::Sync,
                                  now, kNoAddr, r.sync));
            advance(now);
        } else {
            ++stats_.spinLock;
        }
        return;
      }
      case State::StallPrefetch: {
        const TraceRecord &r = trace_[index_];
        const PrefetchResult res = mem_.prefetchAccess(
            id_, r.addr, r.kind == RecordKind::PrefetchExcl, now);
        if (res == PrefetchResult::BufferFull) {
            ++stats_.stallPrefetchQueue;
        } else {
            // The stalled prefetch instruction finally issues: this
            // cycle retires it.
            ++stats_.busy;
            ++stats_.prefetchesExecuted;
            state_ = State::Running;
            endStall(now);
            if (critpath_)
                critpath_->prefetchStallEnd(id_, now);
            advance(now);
        }
        return;
      }
      case State::Running:
        break;
    }

    const TraceRecord &r = trace_[index_];
    switch (r.kind) {
      case RecordKind::Instr:
        ++stats_.busy;
        if (instr_left_ > 1) {
            --instr_left_;
        } else {
            instr_left_ = 0;
            advance(now);
        }
        return;

      case RecordKind::Read:
      case RecordKind::Write:
        if (!in_access_phase_) {
            // Cycle 1: the instruction itself.
            ++stats_.busy;
            ++stats_.demandRefs;
            if (r.kind == RecordKind::Read)
                ++stats_.reads;
            else
                ++stats_.writes;
            in_access_phase_ = true;
            return;
        }
        // Cycle 2(+): the data access.
        if (executeAccess(now))
            advance(now);
        return;

      case RecordKind::Prefetch:
      case RecordKind::PrefetchExcl: {
        // Paper 3.1: the overhead is "a single instruction and the
        // prefetch access itself" — one instruction cycle, then one
        // cycle issuing the access (the fill is asynchronous).
        if (!in_access_phase_) {
            ++stats_.busy;
            in_access_phase_ = true;
            return;
        }
        const PrefetchResult res = mem_.prefetchAccess(
            id_, r.addr, r.kind == RecordKind::PrefetchExcl, now);
        if (res == PrefetchResult::BufferFull) {
            ++stats_.stallPrefetchQueue;
            state_ = State::StallPrefetch;
            if (critpath_)
                critpath_->prefetchStallStart(id_, now);
            markStall("stall_prefetch_buffer", obs::TraceCat::Exec, now);
        } else {
            ++stats_.busy;
            ++stats_.prefetchesExecuted;
            advance(now);
        }
        return;
      }

      case RecordKind::LockAcquire:
        if (locks_.tryAcquire(r.sync, id_)) {
            ++stats_.busy;
            PREFSIM_TRACE(trace_buf_,
                          instant(id_, "lock_acquire", obs::TraceCat::Sync,
                                  now, kNoAddr, r.sync));
            advance(now);
        } else {
            ++stats_.spinLock;
            state_ = State::SpinLock;
            if (critpath_)
                critpath_->lockSpinStart(id_, r.sync, now);
            markStall("spin_lock", obs::TraceCat::Sync, now);
        }
        return;

      case RecordKind::LockRelease:
        ++stats_.busy;
        locks_.release(r.sync, id_);
        if (critpath_)
            critpath_->lockReleased(id_, r.sync, now);
        if (lock_release_)
            lock_release_(r.sync);
        PREFSIM_TRACE(trace_buf_,
                      instant(id_, "lock_release", obs::TraceCat::Sync,
                              now, kNoAddr, r.sync));
        advance(now);
        return;

      case RecordKind::Barrier:
        ++stats_.busy;
        PREFSIM_TRACE(trace_buf_,
                      instant(id_, "barrier_arrive", obs::TraceCat::Sync,
                              now, kNoAddr, r.sync));
        if (barriers_.arrive(r.sync, id_)) {
            // Last arrival: everyone proceeds. The recorder learns the
            // episode's critical arriver before the waiters release, so
            // their barrier pieces carry the right predecessor.
            if (critpath_)
                critpath_->barrierLast(id_, now);
            advance(now);
            if (release_all_)
                release_all_(now);
        } else {
            state_ = State::WaitBarrier;
            beginLazyStall(&stats_.waitBarrier, now);
            if (critpath_)
                critpath_->barrierArrive(id_, now);
            markStall("wait_barrier", obs::TraceCat::Sync, now);
        }
        return;
    }
    prefsim_panic("unknown record kind");
}

void
Processor::wake(bool retry, Cycle now)
{
    prefsim_assert(state_ == State::WaitMemory,
                   "wake() on proc ", id_, " in state ", describeState());
    state_ = State::Running;
    endStall(now);
    // Settle the blocked span [anchor, now) into the bucket chosen at
    // entry. Completions fire from the bus tick, which runs before the
    // processor rotation, so this processor never ticks at `now` while
    // still blocked — exactly the cycles the eager loop counted.
    *stall_bucket_ += now - stall_anchor_;
    ++progress_;
    if (!retry) {
        // The blocked access was satisfied by the completing operation.
        advance(now);
    }
    // Otherwise stay on the current record in its access phase; the next
    // tick re-executes the access (same cycle: the bus ticks first).
}

void
Processor::barrierRelease(Cycle now, bool ticked_this_cycle)
{
    prefsim_assert(state_ == State::WaitBarrier,
                   "barrierRelease() on proc ", id_, " in state ",
                   describeState());
    state_ = State::Running;
    endStall(now);
    if (critpath_)
        critpath_->barrierReleased(id_, now);
    // Settle the waiting span. Releases happen mid-rotation (the last
    // arriver executes its Barrier record), so processors whose service
    // slot preceded the releaser's already spent cycle `now` waiting
    // and are owed one extra cycle; later processors get released
    // before their slot and tick as Running this very cycle.
    stats_.waitBarrier += (now - stall_anchor_) + (ticked_this_cycle ? 1 : 0);
    ++progress_;
    advance(now);
}

Cycle
Processor::runningInertCycles(Cycle now, Cycle limit) const
{
    const std::uint64_t version = mem_.cacheVersion(id_);
    if (inert_valid_ && inert_version_ == version && inert_until_ > now) {
        // Still on a previously walked inert run.
        const Cycle left = inert_until_ - now;
        if (left >= limit)
            return limit;
        if (!inert_capped_)
            return left;
        // The cached walk hit its lookahead cap short of what this
        // window could use: extend by re-walking from the live cursor.
    }

    // Walk the trace from the live cursor, counting consecutive cycles
    // whose tick() provably has no cross-processor effect. Quiet-hit
    // and quiet-drop predictions stay valid for the whole window:
    // nothing another processor does during it can evict or invalidate
    // a line (those require a bus operation or an exact cycle), and
    // this processor's own quiet hits never change line residency
    // either. Look some distance beyond the requested limit so the
    // memoized end point survives several windows.
    static constexpr Cycle kLookahead = 4096;
    const Cycle cap = std::max(limit, kLookahead);
    Cycle n = 0;
    std::size_t idx = index_;
    bool access_phase = in_access_phase_;
    bool capped = true; // Set false when a real boundary is found.
    while (n < cap) {
        if (idx >= trace_.size()) {
            // Trace exhausted n cycles from now: the window may extend
            // exactly to the completion cycle, no further, so the final
            // retirement lands cycle_ on the same value the cycle loop
            // ends with.
            capped = false;
            break;
        }
        const TraceRecord &r = trace_[idx];
        if (r.kind == RecordKind::Instr) {
            const std::uint32_t left =
                idx == index_ ? instr_left_ : r.count;
            // A count of zero still costs the one cycle tick() charges.
            n += std::max<Cycle>(left, 1);
            ++idx;
            access_phase = false;
            continue;
        }
        if (r.kind == RecordKind::Read || r.kind == RecordKind::Write) {
            if (!access_phase) {
                // The instruction cycle only charges local counters.
                ++n;
                access_phase = true;
                continue;
            }
            if (!mem_.wouldHitQuietly(id_, r.addr,
                                      r.kind == RecordKind::Write)) {
                // Would stall, swap, promote, or issue a bus op:
                // cycle-exact territory.
                capped = false;
                break;
            }
            ++n;
            ++idx;
            access_phase = false;
            continue;
        }
        if (r.kind == RecordKind::Prefetch ||
            r.kind == RecordKind::PrefetchExcl) {
            if (!access_phase) {
                ++n;
                access_phase = true;
                continue;
            }
            if (!mem_.wouldPrefetchDropQuietly(id_, r.addr)) {
                // Would issue a bus operation or stall on the MSHR
                // pool: execute it exactly.
                capped = false;
                break;
            }
            ++n;
            ++idx;
            access_phase = false;
            continue;
        }
        // Sync records always execute cycle-exactly.
        capped = false;
        break;
    }
    inert_valid_ = true;
    inert_version_ = version;
    inert_until_ = now + n;
    inert_capped_ = capped;
    return std::min(n, limit);
}

void
Processor::fastForward(Cycle n, Cycle now)
{
    switch (state_) {
      case State::Done:
      case State::WaitMemory:
      case State::WaitBarrier:
        return; // Settled lazily at wake.
      case State::SpinLock:
        stats_.spinLock += n;
        return;
      case State::StallPrefetch:
        stats_.stallPrefetchQueue += n;
        return;
      case State::Running:
        break;
    }
    // Replay the cycles runningInertCycles() promised, record by
    // record. Quiet hits run through the real memory system — same
    // call, same cycle stamp as the cycle loop — so every cache-local
    // side effect (LRU, access masks, the silent E->M upgrade) lands
    // identically.
    const Cycle end = now + n;
    Cycle t = now;
    while (t < end) {
        prefsim_assert(state_ == State::Running,
                       "fastForward() on proc ", id_,
                       " left the Running state mid-window");
        const TraceRecord &r = trace_[index_];
        switch (r.kind) {
          case RecordKind::Instr: {
            const Cycle burst = std::max<Cycle>(instr_left_, 1);
            const Cycle take = std::min(burst, end - t);
            stats_.busy += take;
            if (take < burst) {
                instr_left_ -= static_cast<std::uint32_t>(take);
            } else {
                // The burst's last cycle is t + take - 1, where tick()
                // would have called advance().
                instr_left_ = 0;
                advance(t + take - 1);
            }
            t += take;
            break;
          }
          case RecordKind::Read:
          case RecordKind::Write:
            if (!in_access_phase_) {
                ++stats_.busy;
                ++stats_.demandRefs;
                if (r.kind == RecordKind::Read)
                    ++stats_.reads;
                else
                    ++stats_.writes;
                in_access_phase_ = true;
            } else {
                const bool completed = executeAccess(t);
                prefsim_assert(completed && state_ == State::Running,
                               "proc ", id_, " access at cycle ", t,
                               " was predicted to hit quietly but did "
                               "not complete");
                advance(t);
            }
            ++t;
            break;
          case RecordKind::Prefetch:
          case RecordKind::PrefetchExcl:
            if (!in_access_phase_) {
                ++stats_.busy;
                in_access_phase_ = true;
            } else {
                const PrefetchResult res = mem_.prefetchAccess(
                    id_, r.addr, r.kind == RecordKind::PrefetchExcl, t);
                prefsim_assert(
                    res == PrefetchResult::DroppedResident ||
                        res == PrefetchResult::DroppedDuplicate,
                    "proc ", id_, " prefetch at cycle ", t,
                    " was predicted to drop quietly but did not");
                ++stats_.busy;
                ++stats_.prefetchesExecuted;
                advance(t);
            }
            ++t;
            break;
          case RecordKind::LockAcquire:
          case RecordKind::LockRelease:
          case RecordKind::Barrier:
            prefsim_panic("fastForward() reached a sync record on proc ",
                          id_);
        }
        if (state_ == State::Done)
            return; // Only at t == end: the walk stops at completion.
    }
}

std::string
Processor::describeState() const
{
    switch (state_) {
      case State::Running:
        return "Running";
      case State::WaitMemory:
        return "WaitMemory";
      case State::SpinLock:
        return "SpinLock";
      case State::WaitBarrier:
        return "WaitBarrier";
      case State::StallPrefetch:
        return "StallPrefetch";
      case State::Done:
        return "Done";
    }
    return "?";
}

} // namespace prefsim
