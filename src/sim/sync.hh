/**
 * @file
 * Lock and barrier bookkeeping.
 *
 * Charlie "carries out locking and barrier synchronization; therefore,
 * as the interleaving of accesses from the different processors is
 * changed by the behavior of the memory subsystem, Charlie ensures that
 * a legal interleaving is maintained" (paper §3.3). We reproduce that
 * contract: processors may acquire locks in a different order than the
 * traced run, but critical sections stay mutually exclusive and barriers
 * hold everyone until the last arrival. Spinning is modelled as
 * cache-resident test-and-test&set: it burns processor cycles but
 * generates no bus traffic.
 */

#ifndef PREFSIM_SIM_SYNC_HH
#define PREFSIM_SIM_SYNC_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace prefsim
{

/** Mutual-exclusion state for the workload's lock set. */
class LockTable
{
  public:
    explicit LockTable(SyncId num_locks);

    /**
     * Attempt to take lock @p id for @p proc.
     * @return true on success; false if another processor holds it.
     * Recursive acquisition panics (trace bug).
     */
    bool tryAcquire(SyncId id, ProcId proc);

    /** Release lock @p id; panics unless @p proc holds it. */
    void release(SyncId id, ProcId proc);

    /** Holder of @p id, or kNoProc. */
    ProcId holder(SyncId id) const;

    /** True if no lock is held (end-of-run invariant). */
    bool allFree() const;

    SyncId numLocks() const
    {
        return static_cast<SyncId>(holders_.size());
    }

  private:
    std::vector<ProcId> holders_;
};

/** All-processor barrier with episode-id consistency checking. */
class BarrierManager
{
  public:
    explicit BarrierManager(unsigned num_procs);

    /**
     * Processor @p proc arrives at barrier @p id.
     * @return true if this arrival completes the episode (caller should
     *         wake all waiting processors).
     * Panics if @p proc arrives twice in one episode or if @p id differs
     * from the episode's id (illegal interleaving — a generator bug).
     */
    bool arrive(SyncId id, ProcId proc);

    /** True if @p proc has arrived and the episode is still open. */
    bool waiting(ProcId proc) const;

    /** Completed barrier episodes. */
    std::uint64_t episodes() const { return episodes_; }

    /** Processors currently arrived in the open episode. */
    unsigned arrivedCount() const { return arrived_count_; }

  private:
    unsigned num_procs_;
    std::vector<bool> arrived_;
    unsigned arrived_count_ = 0;
    bool episode_open_ = false;
    SyncId episode_id_ = 0;
    std::uint64_t episodes_ = 0;
};

} // namespace prefsim

#endif // PREFSIM_SIM_SYNC_HH
