#include "sim/memory_system.hh"

#include <algorithm>

#include "common/log.hh"
#include "verify/runtime.hh"

namespace prefsim
{

MemorySystem::MemorySystem(unsigned num_procs, const CacheGeometry &geom,
                           const BusTiming &timing,
                           unsigned prefetch_buffer_depth,
                           std::vector<ProcStats> &proc_stats,
                           unsigned victim_entries,
                           unsigned prefetch_data_buffer_entries,
                           CoherenceProtocol protocol)
    : geom_(geom), bus_(timing, num_procs),
      pdb_entries_(prefetch_data_buffer_entries), protocol_(protocol),
      stats_(proc_stats), pending_upgrade_(num_procs, kNoAddr),
      cache_version_(num_procs, 0), prefetch_first_use_(num_procs, 0)
{
    prefsim_assert(proc_stats.size() == num_procs,
                   "proc stats size mismatch");
    caches_.reserve(num_procs);
    for (ProcId p = 0; p < num_procs; ++p) {
        caches_.push_back(std::make_unique<DataCache>(
            p, geom, prefetch_buffer_depth, victim_entries));
        if (pdb_entries_ > 0)
            caches_.back()->configurePrefetchDataBuffer(pdb_entries_);
    }
    bus_.setCompletion(
        [this](const Transaction &t, Cycle now) { onBusComplete(t, now); });
}

void
MemorySystem::attachObs(ObsContext &ctx, obs::TraceBuffer *trace,
                        obs::AttributionProfiler *profiler,
                        obs::CritPathRecorder *critpath)
{
    // Bus: queue depth seen by arriving requests, and the arbitration
    // wait of each class (paper §3.3's demand-first policy made visible).
    BusObs bo;
    bo.queueDepth =
        &ctx.metrics.histogram("bus.queue_depth", obs::linearBounds(32));
    bo.arbWaitDemand = &ctx.metrics.histogram("bus.arb_wait_demand",
                                              obs::powerOfTwoBounds(14));
    bo.arbWaitPrefetch = &ctx.metrics.histogram("bus.arb_wait_prefetch",
                                                obs::powerOfTwoBounds(14));
    bo.profile = profiler;
    bo.critpath = critpath;
    bo.trace = trace;
    bus_.setObs(bo);

    // Caches: machine-total eviction accounting (one shared set of
    // counters; per-processor splits live in ProcStats already).
    CacheObs co;
    co.evictions = &ctx.metrics.counter("cache.evictions");
    co.dirtyEvictions = &ctx.metrics.counter("cache.evictions_dirty");
    co.prefetchLostEvictions =
        &ctx.metrics.counter("cache.evictions_prefetch_unused");
    co.profile = profiler;
    for (auto &c : caches_)
        c->setObs(co);

    obs_.profile = profiler;
    obs_.critpath = critpath;
    obs_.prefetchLateness = &ctx.metrics.histogram(
        "prefetch.lateness_cycles", obs::powerOfTwoBounds(14));
    obs_.invalidations = &ctx.metrics.counter("coherence.invalidations");
    obs_.downgrades = &ctx.metrics.counter("coherence.downgrades");
    obs_.deadFills = &ctx.metrics.counter("coherence.dead_fills");
    obs_.lateDemandAttach =
        &ctx.metrics.counter("prefetch.late_demand_attach");
    obs_.trace = trace;
}

MemorySystem::SnoopSummary
MemorySystem::probeOthers(ProcId requester, Addr line_base) const
{
    SnoopSummary s;
    for (ProcId p = 0; p < caches_.size(); ++p) {
        if (p == requester)
            continue;
        const DataCache &c = *caches_[p];
        if (isValid(c.stateAnywhere(line_base))) {
            s.anyCopy = true;
            break;
        }
        // The real buffer is non-snooping, but the neutralisation model
        // keeps parked copies downgradable — so the requester's state
        // choice must count them, or it takes Exclusive beside a parked
        // copy that a later promotion silently makes resident.
        if (const CacheFrame *parked = c.findParked(line_base)) {
            if (isValid(parked->state)) {
                s.anyCopy = true;
                break;
            }
        }
        const Mshr *m = c.findMshr(line_base);
        if (m && !m->arriveInvalid) {
            s.anyCopy = true;
            break;
        }
    }
    return s;
}

void
MemorySystem::downgradeOthers(ProcId requester, Addr line_base, Cycle now)
{
    (void)now; // Only read by tracing emission sites.
    if (mutation_ == ProtocolMutation::SkipDowngrade)
        return; // Seeded bug (verification only): remote reads ignored.
    for (ProcId p = 0; p < caches_.size(); ++p) {
        if (p == requester)
            continue;
        DataCache &c = *caches_[p];
        CacheFrame *f = c.findAny(line_base);
        CacheFrame *parked = c.findParked(line_base);
        Mshr *m = c.findMshr(line_base);
        // Replay p's pending quiet work before mutating its cache: the
        // quiet hits logically precede this bus-ordered event. The
        // lookups above survive the catch-up — quiet work never
        // changes residency, parked entries, or MSHRs.
        if (catch_up_ && ((f && isValid(f->state)) || parked != nullptr ||
                          (m && !m->arriveInvalid)))
            catch_up_(p);
        if (f != nullptr) {
            if (isValid(f->state)) {
                if (isPrivate(f->state)) {
                    // Losing M/E shrinks the owner's quiet-write set.
                    ++cache_version_[p];
                    if (obs_.downgrades)
                        obs_.downgrades->inc();
                    if (obs_.profile)
                        obs_.profile->downgrade(line_base);
                    PREFSIM_TRACE(obs_.trace,
                                  instant(p, "downgrade",
                                          obs::TraceCat::Coherence, now,
                                          line_base, requester));
                }
                // Illinois: an M owner flushes while supplying the line;
                // the transfer itself is the requester's bus operation.
                f->state = LineState::Shared;
            }
        }
        if (parked != nullptr) {
            // A non-snooping buffer would not see this downgrade; count
            // the hazard and neutralise the entry to keep the simulated
            // machine coherent.
            parked->state = LineState::Shared;
            ++stats_[p].bufferProtectionEvents;
        }
        if (m && !m->arriveInvalid &&
            m->targetState != LineState::Shared &&
            mutation_ != ProtocolMutation::KeepStaleMshrTarget) {
            // An in-flight private fill loses exclusivity; a fill headed
            // for Modified retries its write through the upgrade path.
            m->targetState = LineState::Shared;
        }
    }
}

void
MemorySystem::invalidateOthers(ProcId requester, Addr line_base,
                               std::uint32_t word, Cycle now)
{
    (void)now; // Only read by tracing emission sites.
    if (mutation_ == ProtocolMutation::SkipInvalidate)
        return; // Seeded bug (verification only): remote copies survive.
    for (ProcId p = 0; p < caches_.size(); ++p) {
        if (p == requester)
            continue;
        DataCache &c = *caches_[p];
        CacheFrame *f = c.findAny(line_base);
        CacheFrame *parked = c.findParked(line_base);
        Mshr *m = c.findMshr(line_base);
        // Replay p's pending quiet work before mutating its cache (and
        // before the access-mask read below: false-sharing attribution
        // depends on the words p touched *up to* this invalidation).
        // The lookups survive the catch-up — quiet work never changes
        // residency, parked entries, or MSHRs.
        if (catch_up_ && ((f && isValid(f->state)) || parked != nullptr ||
                          (m && !m->arriveInvalid)))
            catch_up_(p);
        if (f != nullptr) {
            if (isValid(f->state)) {
                ++cache_version_[p]; // The copy stops hitting quietly.
                if (obs_.invalidations)
                    obs_.invalidations->inc();
                PREFSIM_TRACE(obs_.trace,
                              instant(p, "invalidate",
                                      obs::TraceCat::Coherence, now,
                                      line_base, requester));
                // False sharing: the invalidating write targets a word
                // this processor never touched in the residency (§4.4).
                f->invalFalseSharing = (f->accessMask >> word & 1u) == 0;
                if (obs_.profile)
                    obs_.profile->invalidation(line_base,
                                               f->invalFalseSharing);
                if (f->broughtByPrefetch && !f->usedSinceFill) {
                    c.markPrefetchLost(line_base);
                    if (obs_.profile)
                        obs_.profile->prefetchKilled(p, line_base);
                }
                f->state = LineState::Invalid;
            }
        }
        if (parked != nullptr) {
            // A non-snooping buffer would have served this stale line;
            // count the hazard and kill the entry (see 3.1). Killing it
            // stops findParked() from seeing it, so a prefetch to this
            // line no longer drops quietly.
            ++cache_version_[p];
            parked->state = LineState::Invalid;
            c.markPrefetchLost(line_base);
            if (obs_.profile)
                obs_.profile->prefetchKilled(p, line_base);
            ++stats_[p].bufferProtectionEvents;
        }
        if (m && !m->arriveInvalid) {
            m->arriveInvalid = true;
            if (obs_.invalidations)
                obs_.invalidations->inc();
            PREFSIM_TRACE(obs_.trace,
                          instant(p, "kill_inflight_fill",
                                  obs::TraceCat::Coherence, now, line_base,
                                  requester));
            // No word of the in-flight line has been accessed yet; the
            // only local interest we know of is a blocked demand access
            // to demandWord.
            m->invalFalseSharing =
                !(m->demandWaiting && m->demandWord == word);
            if (obs_.profile) {
                obs_.profile->inflightKill(line_base);
                if (m->isPrefetch)
                    obs_.profile->prefetchKilled(p, line_base);
            }
        }
    }
}

AccessResult
MemorySystem::demandAccess(ProcId proc, Addr addr, bool is_write, Cycle now)
{
    DataCache &c = *caches_[proc];
    const Addr base = geom_.lineBase(addr);
    const std::uint32_t word = geom_.wordInLine(addr);

    // The hit path, shared by genuine hits and victim-buffer swaps.
    auto complete_hit = [&](CacheFrame &f) -> AccessResult {
        f.accessMask |= 1u << word;
        if (f.broughtByPrefetch && !f.usedSinceFill) {
            ++prefetch_first_use_[proc]; // Prefetch proved useful.
            // The one profiler hook quiet hit replay reaches: sharded
            // per processor, safe from the parallel engine's workers.
            if (obs_.profile)
                obs_.profile->prefetchUseful(proc, base);
        }
        f.usedSinceFill = true;
        c.touch(addr);
        if (c.prefetchLostEntries())
            c.consumePrefetchLost(base); // Stale marker: satisfied.
        if (!is_write || f.state == LineState::Modified)
            return AccessResult::Hit;
        if (f.state == LineState::Exclusive) {
            // Illinois private-clean: silent upgrade.
            f.state = LineState::Modified;
            return AccessResult::Hit;
        }
        // Write hit on Shared. Write-invalidate kills the other
        // copies with an address-only upgrade; write-update broadcasts
        // the word and every copy stays valid (no future invalidation
        // miss — and no silence either: every such write is a bus op).
        Transaction t;
        t.requester = proc;
        t.lineBase = base;
        t.word = word;
        t.demandWaiting = true;
        t.issuedAt = now;
        if (protocol_ == CoherenceProtocol::WriteInvalidate) {
            t.kind = BusOpKind::Upgrade;
            invalidateOthers(proc, base, word, now);
        } else {
            t.kind = BusOpKind::WriteUpdate;
            // Receivers keep their copies; memory is updated by the
            // broadcast, so the line stays clean-shared everywhere.
        }
        const std::uint64_t up_id = bus_.request(t, now);
        if (obs_.critpath)
            obs_.critpath->upgradeStart(proc, up_id, base, now,
                                        t.kind == BusOpKind::WriteUpdate);
        ++stats_[proc].upgradesIssued;
        prefsim_assert(pending_upgrade_[proc] == kNoAddr,
                       "overlapping upgrades on proc ", proc);
        pending_upgrade_[proc] = base;
        return AccessResult::UpgradeWait;
    };

    if (CacheFrame *f = c.findFrame(addr); f && isValid(f->state))
        return complete_hit(*f);

    if (Mshr *m = c.findMshr(addr)) {
        // Prefetch (or, after an in-flight invalidation, a refetch)
        // still in progress: wait for the residual latency only.
        prefsim_assert(m->isPrefetch || m->arriveInvalid || m->demandWaiting,
                       "demand access found foreign demand MSHR");
        if (!m->demandWaiting) {
            ++stats_[proc].misses.prefetchInProgress;
            m->demandWaiting = true;
            m->demandWord = word;
            m->demandAttachedAt = now;
            bus_.promoteToDemand(m->busId);
            if (obs_.critpath)
                obs_.critpath->demandAttach(proc, m->busId, now);
            if (obs_.lateDemandAttach)
                obs_.lateDemandAttach->inc();
            if (obs_.profile) {
                // A demand MSHR always carries demandWaiting from
                // allocation, so this attach is to an in-flight
                // *prefetch*: the late outcome, plus its own miss row.
                obs_.profile->miss(
                    base,
                    obs::AttributionProfiler::MissKind::PrefetchInflight,
                    /*false_sharing=*/false);
                obs_.profile->prefetchLate(proc, base);
            }
            PREFSIM_TRACE(obs_.trace,
                          instant(proc, "late_demand_attach",
                                  obs::TraceCat::Prefetch, now, base));
        }
        return AccessResult::InProgressWait;
    }

    // Victim-buffer probe: a conflict evictee swaps back for a one-cycle
    // penalty instead of a bus transaction (§4.3's suggestion).
    if (c.victimEntries() > 0) {
        if (CacheFrame *f = c.swapFromVictim(addr)) {
            ++stats_[proc].victimHits;
            const AccessResult res = complete_hit(*f);
            // The swap penalty replaces the plain-hit timing; upgrades
            // already stall for far longer.
            return res == AccessResult::Hit ? AccessResult::VictimHit
                                            : res;
        }
    }

    // Prefetch-data-buffer probe: a parked prefetched line promotes
    // into the cache for a one-cycle penalty (buffer-target mode).
    if (pdb_entries_ > 0) {
        EvictedLine evicted;
        if (CacheFrame *f = c.promoteParked(addr, evicted)) {
            ++stats_[proc].prefetchBufferHits;
            if (evicted.dirty) {
                Transaction wb;
                wb.kind = BusOpKind::WriteBack;
                wb.requester = proc;
                wb.lineBase = evicted.lineBase;
                wb.issuedAt = now;
                bus_.request(wb, now);
            }
            const AccessResult res = complete_hit(*f);
            return res == AccessResult::Hit ? AccessResult::VictimHit
                                            : res;
        }
    }

    // A real CPU miss: classify it against the tag-matching frame —
    // which, with a victim buffer, may be an invalidated buffer entry.
    const bool lost = c.consumePrefetchLost(base);
    const CacheFrame *matching = c.findFrame(addr);
    if (matching == nullptr)
        matching = c.findVictim(addr);
    const bool inval_miss = classifyMiss(proc, matching, base, lost);

    const SnoopSummary snoop = probeOthers(proc, base);
    Transaction t;
    t.requester = proc;
    t.lineBase = base;
    t.word = word;
    t.demandWaiting = true;
    t.issuedAt = now;
    LineState target;
    if (is_write && protocol_ == CoherenceProtocol::WriteInvalidate) {
        t.kind = BusOpKind::ReadExclusive;
        target = LineState::Modified;
        invalidateOthers(proc, base, word, now);
    } else if (is_write) {
        // Write-update: fetch the line shared; the retried write then
        // upgrades silently (alone) or broadcasts an update (shared).
        t.kind = BusOpKind::ReadShared;
        target = snoop.anyCopy ? LineState::Shared : LineState::Modified;
        downgradeOthers(proc, base, now);
    } else {
        t.kind = BusOpKind::ReadShared;
        target = snoop.anyCopy ? LineState::Shared : LineState::Exclusive;
        downgradeOthers(proc, base, now);
    }
    Mshr &m = c.allocateMshr(base, target, /*is_prefetch=*/false);
    m.demandWaiting = true;
    m.demandWord = word;
    m.busId = bus_.request(t, now);
    if (obs_.critpath)
        obs_.critpath->busRequest(m.busId, proc, base, now,
                                  /*prefetch=*/false, inval_miss,
                                  /*demand_wait=*/true);
    PREFSIM_VERIFY_MEM_LINE(*this, base);
    return AccessResult::MissWait;
}

PrefetchResult
MemorySystem::prefetchAccess(ProcId proc, Addr addr, bool exclusive,
                             Cycle now)
{
    DataCache &c = *caches_[proc];
    const Addr base = geom_.lineBase(addr);

    // "If the prefetch hits in the cache, no bus operation is initiated,
    // even if the cache line is in the shared state" (§4.1).
    if (c.resident(addr)) {
        ++stats_[proc].prefetchesDroppedResident;
        return PrefetchResult::DroppedResident;
    }
    if (c.findMshr(addr)) {
        ++stats_[proc].prefetchesDroppedDuplicate;
        return PrefetchResult::DroppedDuplicate;
    }
    // A victim-buffer occupant satisfies the prefetch by swapping back.
    if (c.victimEntries() > 0 && c.swapFromVictim(addr)) {
        ++stats_[proc].prefetchesDroppedResident;
        return PrefetchResult::DroppedResident;
    }
    // Already parked in the prefetch data buffer: nothing to do.
    if (pdb_entries_ > 0 && c.findParked(addr) != nullptr) {
        ++stats_[proc].prefetchesDroppedResident;
        return PrefetchResult::DroppedResident;
    }
    if (!c.prefetchMshrAvailable())
        return PrefetchResult::BufferFull;

    const std::uint32_t word = geom_.wordInLine(addr);
    const SnoopSummary snoop = probeOthers(proc, base);
    Transaction t;
    t.requester = proc;
    t.lineBase = base;
    t.word = word;
    t.isPrefetch = true;
    t.issuedAt = now;
    LineState target;
    if (exclusive && protocol_ == CoherenceProtocol::WriteInvalidate) {
        // Exclusive prefetch: read-for-ownership, installing in the
        // Illinois private-clean state (§3.3).
        t.kind = BusOpKind::ReadExclusive;
        target = LineState::Exclusive;
        invalidateOthers(proc, base, word, now);
    } else {
        t.kind = BusOpKind::ReadShared;
        target = snoop.anyCopy ? LineState::Shared : LineState::Exclusive;
        downgradeOthers(proc, base, now);
    }
    Mshr &m = c.allocateMshr(base, target, /*is_prefetch=*/true);
    m.busId = bus_.request(t, now);
    if (obs_.critpath)
        obs_.critpath->busRequest(m.busId, proc, base, now,
                                  /*prefetch=*/true, /*invalidation=*/false,
                                  /*demand_wait=*/false);
    PREFSIM_VERIFY_MEM_LINE(*this, base);
    ++stats_[proc].prefetchMisses;
    if (obs_.profile)
        obs_.profile->prefetchIssued(proc, base);
    PREFSIM_TRACE(obs_.trace,
                  instant(proc,
                          exclusive ? "prefetch_excl_issue"
                                    : "prefetch_issue",
                          obs::TraceCat::Prefetch, now, base));
    return PrefetchResult::Issued;
}

bool
MemorySystem::classifyMiss(ProcId proc, const CacheFrame *frame,
                           Addr line_base, bool prefetched_lost)
{
    MissBreakdown &m = stats_[proc].misses;
    const bool invalidation =
        frame != nullptr && frame->tag == line_base &&
        frame->state == LineState::Invalid;
    if (miss_observer_)
        miss_observer_(proc, line_base, invalidation);
    if (invalidation) {
        if (frame->invalFalseSharing)
            ++m.falseSharing;
        if (prefetched_lost)
            ++m.invalPrefetched;
        else
            ++m.invalNotPrefetched;
    } else {
        if (prefetched_lost)
            ++m.nonSharingPrefetched;
        else
            ++m.nonSharingNotPrefetched;
    }
    if (obs_.profile) {
        using MissKind = obs::AttributionProfiler::MissKind;
        MissKind kind;
        if (invalidation) {
            kind = prefetched_lost ? MissKind::InvalidationPrefetched
                                   : MissKind::Invalidation;
        } else {
            kind = prefetched_lost ? MissKind::NonSharingPrefetched
                                   : MissKind::NonSharing;
        }
        obs_.profile->miss(line_base, kind,
                           invalidation && frame->invalFalseSharing);
    }
    return invalidation;
}

void
MemorySystem::onBusComplete(const Transaction &txn, Cycle now)
{
    // Everything but a writeback mutates the requester's cache (or its
    // pending-upgrade slot) and may wake it: replay its pending quiet
    // work first. A running requester (pure prefetch fill) executed
    // those quiet cycles strictly before this completion; the install
    // below may evict the very line they hit in.
    if (catch_up_ && txn.kind != BusOpKind::WriteBack)
        catch_up_(txn.requester);
    switch (txn.kind) {
      case BusOpKind::WriteBack:
        return; // Fire-and-forget.
      case BusOpKind::WriteUpdate: {
        // The broadcast is serialised; the write is done. All copies
        // (including ours) remain valid and clean-shared.
        prefsim_assert(pending_upgrade_[txn.requester] == txn.lineBase,
                       "update completion mismatch");
        pending_upgrade_[txn.requester] = kNoAddr;
        if (obs_.critpath)
            obs_.critpath->upgradeComplete(txn.requester, now);
        if (wake_)
            wake_(txn.requester, /*retry=*/false);
        return;
      }
      case BusOpKind::Upgrade: {
        DataCache &c = *caches_[txn.requester];
        prefsim_assert(pending_upgrade_[txn.requester] == txn.lineBase,
                       "upgrade completion mismatch");
        pending_upgrade_[txn.requester] = kNoAddr;
        if (obs_.critpath)
            obs_.critpath->upgradeComplete(txn.requester, now);
        CacheFrame *f = c.findFrame(txn.lineBase);
        if (f && f->state == LineState::Shared) {
            // The write is ordered at the upgrade's request time. If a
            // remote read slipped in since (it saw our copy and took
            // Shared), the written line was flushed and stays Shared;
            // otherwise we own it dirty.
            f->state = probeOthers(txn.requester, txn.lineBase).anyCopy
                           ? LineState::Shared
                           : LineState::Modified;
            PREFSIM_VERIFY_MEM_LINE(*this, txn.lineBase);
            if (wake_)
                wake_(txn.requester, /*retry=*/false);
            return;
        }
        // The line was invalidated while the upgrade was queued: the
        // write retries and takes the miss path (an invalidation miss).
        if (wake_)
            wake_(txn.requester, /*retry=*/true);
        return;
      }
      case BusOpKind::ReadShared:
      case BusOpKind::ReadExclusive: {
        DataCache &c = *caches_[txn.requester];
        // Every completion path below changes what the requester's
        // quiet-hit/quiet-drop predicates would answer: the MSHR
        // retires, and the line installs, parks, or arrives dead.
        ++cache_version_[txn.requester];
        const Mshr m = c.releaseMshr(txn.lineBase);
        if (obs_.critpath) {
            if (m.demandWaiting)
                obs_.critpath->demandWaitEnd(txn.requester, m.busId, now);
            else
                obs_.critpath->busRelease(m.busId);
        }
        // The prefetch was late: a demand access has been blocked on
        // this fill since demandAttachedAt. (Demand misses record their
        // full wait in ProcStats; this histogram isolates the residual
        // latency prefetching failed to hide.)
        if (m.isPrefetch && m.demandWaiting) {
            if (obs_.prefetchLateness)
                obs_.prefetchLateness->record(now - m.demandAttachedAt);
            if (obs_.profile)
                obs_.profile->prefetchLateness(txn.requester, txn.lineBase,
                                               now - m.demandAttachedAt);
        }
        if (m.arriveInvalid && obs_.deadFills)
            obs_.deadFills->inc();
        PREFSIM_TRACE(obs_.trace,
                      instant(txn.requester,
                              m.arriveInvalid ? "dead_fill"
                              : m.isPrefetch  ? "prefetch_fill"
                                              : "fill",
                              m.isPrefetch ? obs::TraceCat::Prefetch
                                           : obs::TraceCat::Coherence,
                              now, txn.lineBase));
        if (pdb_entries_ > 0 && m.isPrefetch && !m.demandWaiting) {
            // Buffer-target mode: the prefetched line parks beside the
            // cache instead of filling it (3.1). Dead arrivals are
            // simply wasted.
            if (m.arriveInvalid)
                c.markPrefetchLost(txn.lineBase);
            else
                c.parkPrefetchedLine(txn.lineBase, m.targetState);
            return;
        }
        EvictedLine evicted;
        const LineState install_state =
            m.arriveInvalid ? LineState::Invalid : m.targetState;
        CacheFrame &f = c.install(txn.lineBase, install_state,
                                  m.isPrefetch, evicted);
        if (m.arriveInvalid) {
            f.invalFalseSharing = m.invalFalseSharing;
            if (m.isPrefetch && !m.demandWaiting)
                c.markPrefetchLost(txn.lineBase);
            if (!m.isPrefetch) {
                // The blocked access consumed the fill data before the
                // invalidation logically applied; record its word for
                // the false-sharing attribution of the next miss.
                f.accessMask |= 1u << m.demandWord;
            }
        }
        if (evicted.dirty) {
            Transaction wb;
            wb.kind = BusOpKind::WriteBack;
            wb.requester = txn.requester;
            wb.lineBase = evicted.lineBase;
            wb.issuedAt = now;
            bus_.request(wb, now);
        }
        PREFSIM_VERIFY_MEM_LINE(*this, txn.lineBase);
        if (m.demandWaiting && wake_) {
            // A demand fill satisfies its blocked access even when the
            // line arrives dead: the fill's address phase ordered the
            // access before the invalidating write, so refetching is
            // unnecessary — and skipping it guarantees forward
            // progress. Everything else re-executes: a live fill turns
            // the retry into a hit; a killed prefetch fill refetches as
            // an ordinary demand miss.
            const bool satisfied = !m.isPrefetch && m.arriveInvalid;
            wake_(txn.requester, /*retry=*/!satisfied);
        }
        return;
      }
    }
    prefsim_panic("unknown bus op in completion");
}

bool
MemorySystem::checkLineInvariant(Addr addr) const
{
    const Addr base = geom_.lineBase(addr);
    unsigned valid = 0;
    unsigned exclusive = 0;
    for (const auto &cp : caches_) {
        const LineState s = cp->stateAnywhere(base);
        if (isValid(s))
            ++valid;
        if (isPrivate(s))
            ++exclusive;
    }
    if (exclusive > 1)
        return false;
    if (exclusive == 1 && valid > 1)
        return false;
    return true;
}

bool
MemorySystem::checkLineInvariantDetail(Addr addr, std::string *why) const
{
    const Addr base = geom_.lineBase(addr);
    auto violate = [&](std::string msg) {
        if (why)
            *why = std::move(msg);
        return false;
    };

    // SWMR over resident copies (cache proper + victim buffer + parked
    // prefetch-data-buffer lines: parked copies become resident by a
    // silent promotion, so they must already obey SWMR).
    unsigned valid = 0;
    unsigned modified = 0;
    unsigned privately_held = 0;
    for (const auto &cp : caches_) {
        LineState s = cp->stateAnywhere(base);
        if (!isValid(s)) {
            if (const CacheFrame *parked = cp->findParked(base))
                s = parked->state;
        }
        if (isValid(s))
            ++valid;
        if (s == LineState::Modified)
            ++modified;
        if (isPrivate(s))
            ++privately_held;
    }
    if (modified > 1)
        return violate("coherence.swmr: " + std::to_string(modified) +
                       " Modified copies of one line");
    if (privately_held > 1)
        return violate(
            "coherence.swmr: multiple private (M/E) copies of one line");
    if (privately_held == 1 && valid > 1)
        return violate("coherence.swmr: a private (M/E) copy coexists "
                       "with another valid copy");

    // In-flight fills: at most one live private-target fill, and it
    // excludes every resident copy and every other live fill; a cache
    // never holds both a valid copy and an outstanding fill.
    unsigned live_fills = 0;
    unsigned live_private_fills = 0;
    for (ProcId p = 0; p < caches_.size(); ++p) {
        const Mshr *m = caches_[p]->findMshr(base);
        if (!m)
            continue;
        if (isValid(caches_[p]->stateAnywhere(base)))
            return violate("coherence.inflight_exclusivity: cache " +
                           std::to_string(p) +
                           " holds both a valid copy and an outstanding "
                           "fill of one line");
        if (!m->arriveInvalid) {
            ++live_fills;
            if (isPrivate(m->targetState))
                ++live_private_fills;
        }
    }
    if (live_private_fills > 1)
        return violate("coherence.inflight_exclusivity: two live "
                       "in-flight fills both target a private (M/E) "
                       "state");
    if (live_private_fills == 1 && (valid > 0 || live_fills > 1))
        return violate("coherence.inflight_exclusivity: a live "
                       "in-flight private fill coexists with a valid "
                       "copy or another live fill");
    if (live_fills > 0 && privately_held > 0)
        return violate("coherence.inflight_exclusivity: a live "
                       "in-flight fill coexists with a private (M/E) "
                       "copy");

    // MSHR <-> bus-transaction bijection: every outstanding fill MSHR
    // has exactly one fill transaction on the bus and vice versa (no
    // lost or duplicated transactions); pending upgrades match their
    // address-bus operations the same way.
    for (ProcId p = 0; p < caches_.size(); ++p) {
        unsigned fills = 0;
        unsigned upgrades = 0;
        // Iterate the bus queues in place: this predicate runs per
        // protocol step under PREFSIM_VERIFY, so a snapshot copy of
        // every pending transaction was hot-path allocation.
        bus_.forEachPending([&](const Transaction &t) {
            if (t.lineBase != base || t.requester != p)
                return;
            if (transfersData(t.kind))
                ++fills;
            else if (t.kind == BusOpKind::Upgrade ||
                     t.kind == BusOpKind::WriteUpdate)
                ++upgrades;
        });
        const bool has_mshr = caches_[p]->findMshr(base) != nullptr;
        if (has_mshr && fills != 1)
            return violate("bus.mshr_bijection: cache " +
                           std::to_string(p) + " MSHR has " +
                           std::to_string(fills) +
                           " bus fill transactions (want exactly 1)");
        if (!has_mshr && fills != 0)
            return violate("bus.mshr_bijection: bus fill transaction for "
                           "cache " + std::to_string(p) +
                           " without an MSHR");
        const bool upgrade_pending = pending_upgrade_[p] == base;
        if (upgrade_pending && upgrades != 1)
            return violate("bus.upgrade_consistency: pending upgrade on "
                           "cache " + std::to_string(p) + " has " +
                           std::to_string(upgrades) +
                           " bus operations (want exactly 1)");
        if (!upgrade_pending && upgrades != 0)
            return violate("bus.upgrade_consistency: bus upgrade for "
                           "cache " + std::to_string(p) +
                           " without a pending upgrade");
    }
    return true;
}

} // namespace prefsim
