#include "stats/json.hh"

#include <cstdio>
#include <ostream>

#include "common/log.hh"

namespace prefsim
{

JsonWriter::JsonWriter(std::ostream &os)
    : os_(os)
{}

void
JsonWriter::separate()
{
    if (pending_key_) {
        pending_key_ = false;
        return; // The key already emitted its separator.
    }
    if (!has_.empty() && has_.back() == '1')
        os_ << ",";
    if (!has_.empty())
        has_.back() = '1';
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os_ << "{";
    state_.push_back('o');
    has_.push_back('0');
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    prefsim_assert(!state_.empty() && state_.back() == 'o',
                   "endObject outside object");
    os_ << "}";
    state_.pop_back();
    has_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os_ << "[";
    state_.push_back('a');
    has_.push_back('0');
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    prefsim_assert(!state_.empty() && state_.back() == 'a',
                   "endArray outside array");
    os_ << "]";
    state_.pop_back();
    has_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    prefsim_assert(!state_.empty() && state_.back() == 'o',
                   "key outside object");
    separate();
    os_ << escape(name) << ":";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    os_ << escape(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
    return *this;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out = "\"";
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
    return out;
}

void
writeJson(std::ostream &os, const SimStats &stats, const std::string &label)
{
    JsonWriter j(os);
    j.beginObject();
    if (!label.empty())
        j.key("label").value(label);
    j.key("cycles").value(stats.cycles);
    j.key("demandRefs").value(stats.totalDemandRefs());
    j.key("cpuMissRate").value(stats.cpuMissRate());
    j.key("adjustedCpuMissRate").value(stats.adjustedCpuMissRate());
    j.key("totalMissRate").value(stats.totalMissRate());
    j.key("invalidationMissRate").value(stats.invalidationMissRate());
    j.key("falseSharingMissRate").value(stats.falseSharingMissRate());
    j.key("busUtilization").value(stats.busUtilization());
    j.key("avgProcUtilization").value(stats.avgProcUtilization());

    j.key("bus").beginObject();
    j.key("busyCycles").value(stats.bus.busyCycles);
    for (unsigned k = 0; k < 5; ++k) {
        j.key(busOpName(static_cast<BusOpKind>(k)))
            .value(stats.bus.opCount[k]);
    }
    j.key("queueWaitDemand").value(stats.bus.queueWaitDemand);
    j.key("queueWaitPrefetch").value(stats.bus.queueWaitPrefetch);
    j.endObject();

    j.key("procs").beginArray();
    for (const auto &p : stats.procs) {
        j.beginObject();
        j.key("busy").value(p.busy);
        j.key("stallDemand").value(p.stallDemand);
        j.key("stallUpgrade").value(p.stallUpgrade);
        j.key("stallPrefetchQueue").value(p.stallPrefetchQueue);
        j.key("spinLock").value(p.spinLock);
        j.key("waitBarrier").value(p.waitBarrier);
        j.key("finishedAt").value(p.finishedAt);
        j.key("demandRefs").value(p.demandRefs);
        j.key("prefetchesExecuted").value(p.prefetchesExecuted);
        j.key("prefetchMisses").value(p.prefetchMisses);
        j.key("upgradesIssued").value(p.upgradesIssued);
        j.key("victimHits").value(p.victimHits);
        j.key("prefetchBufferHits").value(p.prefetchBufferHits);
        j.key("bufferProtectionEvents").value(p.bufferProtectionEvents);
        j.key("misses").beginObject();
        j.key("nonSharingNotPrefetched")
            .value(p.misses.nonSharingNotPrefetched);
        j.key("nonSharingPrefetched").value(p.misses.nonSharingPrefetched);
        j.key("invalNotPrefetched").value(p.misses.invalNotPrefetched);
        j.key("invalPrefetched").value(p.misses.invalPrefetched);
        j.key("prefetchInProgress").value(p.misses.prefetchInProgress);
        j.key("falseSharing").value(p.misses.falseSharing);
        j.endObject();
        j.endObject();
    }
    j.endArray();
    j.endObject();
    os << "\n";
}

} // namespace prefsim
