#include "stats/json.hh"

#include <ostream>

namespace prefsim
{

void
writeJson(std::ostream &os, const SimStats &stats, const std::string &label)
{
    JsonWriter j(os);
    j.beginObject();
    if (!label.empty())
        j.key("label").value(label);
    j.key("cycles").value(stats.cycles);
    j.key("demandRefs").value(stats.totalDemandRefs());
    j.key("cpuMissRate").value(stats.cpuMissRate());
    j.key("adjustedCpuMissRate").value(stats.adjustedCpuMissRate());
    j.key("totalMissRate").value(stats.totalMissRate());
    j.key("invalidationMissRate").value(stats.invalidationMissRate());
    j.key("falseSharingMissRate").value(stats.falseSharingMissRate());
    j.key("busUtilization").value(stats.busUtilization());
    j.key("avgProcUtilization").value(stats.avgProcUtilization());

    j.key("bus").beginObject();
    j.key("busyCycles").value(stats.bus.busyCycles);
    for (unsigned k = 0; k < 5; ++k) {
        j.key(busOpName(static_cast<BusOpKind>(k)))
            .value(stats.bus.opCount[k]);
    }
    j.key("queueWaitDemand").value(stats.bus.queueWaitDemand);
    j.key("queueWaitPrefetch").value(stats.bus.queueWaitPrefetch);
    j.endObject();

    j.key("procs").beginArray();
    for (const auto &p : stats.procs) {
        j.beginObject();
        j.key("busy").value(p.busy);
        j.key("stallDemand").value(p.stallDemand);
        j.key("stallUpgrade").value(p.stallUpgrade);
        j.key("stallPrefetchQueue").value(p.stallPrefetchQueue);
        j.key("spinLock").value(p.spinLock);
        j.key("waitBarrier").value(p.waitBarrier);
        j.key("finishedAt").value(p.finishedAt);
        j.key("demandRefs").value(p.demandRefs);
        j.key("prefetchesExecuted").value(p.prefetchesExecuted);
        j.key("prefetchMisses").value(p.prefetchMisses);
        j.key("upgradesIssued").value(p.upgradesIssued);
        j.key("victimHits").value(p.victimHits);
        j.key("prefetchBufferHits").value(p.prefetchBufferHits);
        j.key("bufferProtectionEvents").value(p.bufferProtectionEvents);
        j.key("misses").beginObject();
        j.key("nonSharingNotPrefetched")
            .value(p.misses.nonSharingNotPrefetched);
        j.key("nonSharingPrefetched").value(p.misses.nonSharingPrefetched);
        j.key("invalNotPrefetched").value(p.misses.invalNotPrefetched);
        j.key("invalPrefetched").value(p.misses.invalPrefetched);
        j.key("prefetchInProgress").value(p.misses.prefetchInProgress);
        j.key("falseSharing").value(p.misses.falseSharing);
        j.endObject();
        j.endObject();
    }
    j.endArray();
    j.endObject();
    os << "\n";
}

} // namespace prefsim
