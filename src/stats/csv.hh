/**
 * @file
 * CSV emission so the reproduction's figures can be re-plotted.
 */

#ifndef PREFSIM_STATS_CSV_HH
#define PREFSIM_STATS_CSV_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace prefsim
{

/** Minimal CSV writer (quotes fields containing separators, quotes,
 *  CR/LF, or leading/trailing whitespace). */
class CsvWriter
{
  public:
    /** Stream-backed writer; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &os);

    /** Write one row of cells. */
    void row(const std::vector<std::string> &cells);

    /** Escape a single field per RFC 4180. */
    static std::string escape(const std::string &field);

  private:
    std::ostream &os_;
};

} // namespace prefsim

#endif // PREFSIM_STATS_CSV_HH
