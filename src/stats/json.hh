/**
 * @file
 * JSON serialisation of simulation results, for downstream plotting and
 * archival of experiment outputs.
 */

#ifndef PREFSIM_STATS_JSON_HH
#define PREFSIM_STATS_JSON_HH

#include <iosfwd>
#include <string>

#include "sim/sim_stats.hh"

namespace prefsim
{

/**
 * Minimal JSON value writer (objects, arrays, numbers, strings).
 *
 * Emits compact, valid JSON; strings are escaped per RFC 8259. Usage:
 *
 *   JsonWriter j(os);
 *   j.beginObject();
 *   j.key("cycles").value(123);
 *   j.key("procs").beginArray();
 *   ...
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    JsonWriter &key(const std::string &name);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(bool v);

    /** Escape a string per JSON rules (quotes included). */
    static std::string escape(const std::string &s);

  private:
    /** Emit a comma if the current container already has an element. */
    void separate();

    std::ostream &os_;
    /** Per-depth flag: something was emitted at this level. */
    std::string state_; // 'o' object, 'a' array; paired with has_.
    std::string has_;
    bool pending_key_ = false;
};

/**
 * Serialise @p stats as a JSON object: the headline rates, the bus
 * counters, and a per-processor array with the full cycle/miss
 * breakdowns. @p label becomes a "label" field (experiment identity).
 */
void writeJson(std::ostream &os, const SimStats &stats,
               const std::string &label = "");

} // namespace prefsim

#endif // PREFSIM_STATS_JSON_HH
