/**
 * @file
 * JSON serialisation of simulation results, for downstream plotting and
 * archival of experiment outputs.
 *
 * The generic machinery — JsonWriter, JsonValue and the strict
 * parseJson (the sweep engine's on-disk result cache round-trips
 * through that pair) — lives in common/json.hh so lower layers (the
 * observability subsystem in particular) can use it too; this header
 * re-exports it and adds the SimStats writer.
 */

#ifndef PREFSIM_STATS_JSON_HH
#define PREFSIM_STATS_JSON_HH

#include <iosfwd>
#include <string>

#include "common/json.hh"
#include "sim/sim_stats.hh"

namespace prefsim
{

/**
 * Serialise @p stats as a JSON object: the headline rates, the bus
 * counters, and a per-processor array with the full cycle/miss
 * breakdowns. @p label becomes a "label" field (experiment identity).
 */
void writeJson(std::ostream &os, const SimStats &stats,
               const std::string &label = "");

} // namespace prefsim

#endif // PREFSIM_STATS_JSON_HH
