/**
 * @file
 * Plain-text table formatting for the bench harness and examples.
 */

#ifndef PREFSIM_STATS_TABLE_HH
#define PREFSIM_STATS_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace prefsim
{

/**
 * A column-aligned text table.
 *
 * Numeric cells are produced with the num() helpers so precision is
 * consistent across the reproduction tables.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Append a separator rule. */
    void addRule();

    /** Render with column alignment. */
    void print(std::ostream &os) const;
    std::string str() const;

    /** Data rows added so far (separator rules are not counted). */
    std::size_t numRows() const;

    /** @name Cell formatting helpers. @{ */
    static std::string num(double v, int precision = 2);
    static std::string percent(double v, int precision = 1);
    static std::string count(std::uint64_t v);
    /** @} */

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; ///< Empty row = rule.
};

} // namespace prefsim

#endif // PREFSIM_STATS_TABLE_HH
