#include "stats/csv.hh"

#include <ostream>

namespace prefsim
{

CsvWriter::CsvWriter(std::ostream &os)
    : os_(os)
{}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ",";
        os_ << escape(cells[i]);
    }
    os_ << "\n";
}

std::string
CsvWriter::escape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace prefsim
