#include "stats/csv.hh"

#include <ostream>

namespace prefsim
{

CsvWriter::CsvWriter(std::ostream &os)
    : os_(os)
{}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ",";
        os_ << escape(cells[i]);
    }
    os_ << "\n";
}

std::string
CsvWriter::escape(const std::string &field)
{
    // Quote on separators/quotes/newlines (RFC 4180) and also on CR and
    // leading/trailing whitespace, which many readers silently trim or
    // mangle when unquoted.
    const bool edge_space =
        !field.empty() && (field.front() == ' ' || field.front() == '\t' ||
                           field.back() == ' ' || field.back() == '\t');
    if (!edge_space && field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace prefsim
