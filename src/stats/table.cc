#include "stats/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/log.hh"

namespace prefsim
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    prefsim_assert(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    prefsim_assert(cells.size() == headers_.size(),
                   "row width ", cells.size(), " != header width ",
                   headers_.size());
    rows_.push_back(std::move(cells));
}

std::size_t
TextTable::numRows() const
{
    return static_cast<std::size_t>(std::count_if(
        rows_.begin(), rows_.end(),
        [](const auto &r) { return !r.empty(); }));
}

void
TextTable::addRule()
{
    rows_.emplace_back(); // Sentinel.
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_rule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "+" : "") << std::string(widths[c] + 2, '-')
               << "+";
        }
        os << "\n";
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            os << (c == 0 ? "|" : "") << " " << std::setw(
                   static_cast<int>(widths[c]))
               << (c == 0 ? std::left : std::right) << v << " |";
        }
        os << "\n";
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.empty())
            print_rule();
        else
            print_cells(row);
    }
    print_rule();
}

std::string
TextTable::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::percent(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v * 100.0 << "%";
    return os.str();
}

std::string
TextTable::count(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace prefsim
