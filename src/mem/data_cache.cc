#include "mem/data_cache.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/profile/attribution_profiler.hh"

namespace prefsim
{

std::string
lineStateName(LineState s)
{
    switch (s) {
      case LineState::Invalid:
        return "I";
      case LineState::Shared:
        return "S";
      case LineState::Exclusive:
        return "E";
      case LineState::Modified:
        return "M";
    }
    prefsim_panic("unknown line state");
}

DataCache::DataCache(ProcId owner, const CacheGeometry &geom,
                     unsigned max_prefetch_mshrs, unsigned victim_entries)
    : owner_(owner), geom_(geom), max_prefetch_(max_prefetch_mshrs),
      victim_entries_(victim_entries), frames_(geom.numFrames()),
      last_use_(geom.numFrames(), 0), victim_(victim_entries),
      victim_use_(victim_entries, 0)
{}

CacheFrame *
DataCache::findFrame(Addr addr)
{
    const Addr tag = geom_.lineBase(addr);
    const std::uint32_t base = geom_.frameBase(addr);
    for (std::uint32_t w = 0; w < geom_.ways(); ++w) {
        if (frames_[base + w].tag == tag)
            return &frames_[base + w];
    }
    return nullptr;
}

const CacheFrame *
DataCache::findFrame(Addr addr) const
{
    return const_cast<DataCache *>(this)->findFrame(addr);
}

CacheFrame *
DataCache::findVictim(Addr addr)
{
    const Addr tag = geom_.lineBase(addr);
    for (auto &v : victim_) {
        if (v.tag == tag)
            return &v;
    }
    return nullptr;
}

CacheFrame *
DataCache::findAny(Addr addr)
{
    if (CacheFrame *f = findFrame(addr))
        return f;
    return findVictim(addr);
}

bool
DataCache::resident(Addr addr) const
{
    const CacheFrame *f = findFrame(addr);
    return f != nullptr && isValid(f->state);
}

LineState
DataCache::stateOf(Addr addr) const
{
    const CacheFrame *f = findFrame(addr);
    return f ? f->state : LineState::Invalid;
}

LineState
DataCache::stateAnywhere(Addr addr) const
{
    if (const CacheFrame *f = findFrame(addr))
        return f->state;
    const CacheFrame *v =
        const_cast<DataCache *>(this)->findVictim(addr);
    return v ? v->state : LineState::Invalid;
}

void
DataCache::touch(Addr addr)
{
    const Addr tag = geom_.lineBase(addr);
    const std::uint32_t base = geom_.frameBase(addr);
    for (std::uint32_t w = 0; w < geom_.ways(); ++w) {
        if (frames_[base + w].tag == tag) {
            last_use_[base + w] = ++use_clock_;
            return;
        }
    }
}

Mshr *
DataCache::findMshr(Addr addr)
{
    const Addr base = geom_.lineBase(addr);
    for (auto &m : mshrs_) {
        if (m.lineBase == base)
            return &m;
    }
    return nullptr;
}

const Mshr *
DataCache::findMshr(Addr addr) const
{
    return const_cast<DataCache *>(this)->findMshr(addr);
}

bool
DataCache::prefetchMshrAvailable() const
{
    const auto prefetch_count = static_cast<unsigned>(std::count_if(
        mshrs_.begin(), mshrs_.end(),
        [](const Mshr &m) { return m.isPrefetch; }));
    return prefetch_count < max_prefetch_;
}

Mshr &
DataCache::allocateMshr(Addr line_base, LineState target, bool is_prefetch)
{
    prefsim_assert(findMshr(line_base) == nullptr,
                   "duplicate MSHR for line ", line_base);
    if (is_prefetch) {
        prefsim_assert(prefetchMshrAvailable(),
                       "prefetch MSHR overflow on proc ", owner_);
    }
    Mshr m;
    m.lineBase = line_base;
    m.targetState = target;
    m.isPrefetch = is_prefetch;
    mshrs_.push_back(m);
    return mshrs_.back();
}

Mshr
DataCache::releaseMshr(Addr line_base)
{
    for (auto it = mshrs_.begin(); it != mshrs_.end(); ++it) {
        if (it->lineBase == line_base) {
            Mshr m = *it;
            mshrs_.erase(it);
            return m;
        }
    }
    prefsim_panic("releaseMshr: no MSHR for line ", line_base, " on proc ",
                  owner_);
}

std::uint32_t
DataCache::victimWay(Addr addr) const
{
    const std::uint32_t base = geom_.frameBase(addr);
    std::uint32_t best = 0;
    std::uint64_t best_use = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < geom_.ways(); ++w) {
        const CacheFrame &f = frames_[base + w];
        if (f.tag == kNoAddr)
            return w; // Never-filled frame: free.
        if (!isValid(f.state))
            return w; // Invalid occupant: free (keeps its tag though).
        if (last_use_[base + w] < best_use) {
            best_use = last_use_[base + w];
            best = w;
        }
    }
    return best;
}

void
DataCache::noteDisplaced(const CacheFrame &frame, EvictedLine &evicted,
                         DataCache &owner_cache)
{
    if (frame.tag == kNoAddr || !isValid(frame.state))
        return;
    if (owner_cache.obs_.evictions)
        owner_cache.obs_.evictions->inc();
    if (frame.state == LineState::Modified) {
        evicted.lineBase = frame.tag;
        evicted.dirty = true;
        if (owner_cache.obs_.dirtyEvictions)
            owner_cache.obs_.dirtyEvictions->inc();
    }
    if (frame.broughtByPrefetch && !frame.usedSinceFill) {
        // Prefetched data displaced before use: remember so the next
        // miss on it is classified "non-sharing, prefetched".
        owner_cache.markPrefetchLost(frame.tag);
        if (owner_cache.obs_.prefetchLostEvictions)
            owner_cache.obs_.prefetchLostEvictions->inc();
        if (owner_cache.obs_.profile)
            owner_cache.obs_.profile->prefetchDisplaced(
                owner_cache.owner_, frame.tag);
    }
}

void
DataCache::pushToVictim(const CacheFrame &frame, EvictedLine &evicted)
{
    // Find the LRU victim-buffer slot (empty slots first).
    std::size_t slot = 0;
    std::uint64_t best_use = ~std::uint64_t{0};
    for (std::size_t i = 0; i < victim_.size(); ++i) {
        if (victim_[i].tag == kNoAddr || !isValid(victim_[i].state)) {
            slot = i;
            best_use = 0;
            break;
        }
        if (victim_use_[i] < best_use) {
            best_use = victim_use_[i];
            slot = i;
        }
    }
    noteDisplaced(victim_[slot], evicted, *this);
    victim_[slot] = frame;
    victim_use_[slot] = ++use_clock_;
}

CacheFrame &
DataCache::install(Addr line_base, LineState state, bool by_prefetch,
                   EvictedLine &evicted)
{
    evicted = EvictedLine{};
    // Re-use a frame already tagged with this line (e.g. one holding it
    // in the Invalid state) so a tag never appears in two ways.
    std::uint32_t idx;
    if (CacheFrame *existing = findFrame(line_base)) {
        idx = static_cast<std::uint32_t>(existing - frames_.data());
    } else {
        idx = geom_.frameBase(line_base) + victimWay(line_base);
    }
    CacheFrame &f = frames_[idx];

    if (f.tag != kNoAddr && f.tag != line_base && isValid(f.state)) {
        if (victim_entries_ > 0)
            pushToVictim(f, evicted);
        else
            noteDisplaced(f, evicted, *this);
    }
    f.beginResidency(line_base, state, by_prefetch);
    last_use_[idx] = ++use_clock_;
    return f;
}

CacheFrame *
DataCache::swapFromVictim(Addr addr)
{
    CacheFrame *v = findVictim(addr);
    if (v == nullptr || !isValid(v->state))
        return nullptr;

    std::uint32_t idx;
    if (CacheFrame *existing = findFrame(addr)) {
        // A stale (necessarily invalid) frame with this tag: reuse it.
        idx = static_cast<std::uint32_t>(existing - frames_.data());
    } else {
        idx = geom_.frameBase(addr) + victimWay(addr);
    }
    CacheFrame &f = frames_[idx];
    const CacheFrame incoming = *v;
    if (f.tag != kNoAddr && isValid(f.state)) {
        // True swap: the displaced set occupant takes the buffer slot.
        *v = f;
    } else {
        v->tag = kNoAddr;
        v->state = LineState::Invalid;
    }
    f = incoming;
    last_use_[idx] = ++use_clock_;
    return &f;
}

void
DataCache::configurePrefetchDataBuffer(unsigned entries)
{
    pdb_.assign(entries, CacheFrame{});
    pdb_use_.assign(entries, 0);
}

void
DataCache::parkPrefetchedLine(Addr line_base, LineState state)
{
    prefsim_assert(!pdb_.empty(), "prefetch data buffer not configured");
    // LRU slot (empties first).
    std::size_t slot = 0;
    std::uint64_t best_use = ~std::uint64_t{0};
    for (std::size_t i = 0; i < pdb_.size(); ++i) {
        if (pdb_[i].tag == kNoAddr || !isValid(pdb_[i].state)) {
            slot = i;
            best_use = 0;
            break;
        }
        if (pdb_use_[i] < best_use) {
            best_use = pdb_use_[i];
            slot = i;
        }
    }
    if (pdb_[slot].tag != kNoAddr && isValid(pdb_[slot].state)) {
        // A parked line pushed out unused was a wasted prefetch. Parked
        // lines are clean by construction (never written while parked),
        // so no writeback is needed.
        markPrefetchLost(pdb_[slot].tag);
        if (obs_.profile)
            obs_.profile->prefetchDisplaced(owner_, pdb_[slot].tag);
    }
    pdb_[slot].beginResidency(line_base, state, /*by_prefetch=*/true);
    pdb_use_[slot] = ++use_clock_;
}

CacheFrame *
DataCache::findParked(Addr addr)
{
    const Addr tag = geom_.lineBase(addr);
    for (auto &e : pdb_) {
        if (e.tag == tag && isValid(e.state))
            return &e;
    }
    return nullptr;
}

const CacheFrame *
DataCache::findParked(Addr addr) const
{
    return const_cast<DataCache *>(this)->findParked(addr);
}

CacheFrame *
DataCache::promoteParked(Addr addr, EvictedLine &evicted)
{
    evicted = EvictedLine{};
    CacheFrame *parked = findParked(addr);
    if (parked == nullptr)
        return nullptr;
    const CacheFrame incoming = *parked;
    parked->tag = kNoAddr;
    parked->state = LineState::Invalid;
    CacheFrame &f =
        install(incoming.tag, incoming.state, /*by_prefetch=*/true,
                evicted);
    return &f;
}

std::size_t
DataCache::victimValidLines() const
{
    return static_cast<std::size_t>(std::count_if(
        victim_.begin(), victim_.end(),
        [](const CacheFrame &f) { return isValid(f.state); }));
}

std::size_t
DataCache::validLines() const
{
    return static_cast<std::size_t>(std::count_if(
        frames_.begin(), frames_.end(),
        [](const CacheFrame &f) { return isValid(f.state); }));
}

} // namespace prefsim
