#include "mem/split_bus.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/critpath/critpath.hh"
#include "obs/profile/attribution_profiler.hh"
#include "verify/runtime.hh"

namespace prefsim
{

namespace
{

/** Static-storage name for trace events (TraceEvent never owns). */
[[maybe_unused]] constexpr const char *
opCName(BusOpKind kind)
{
    switch (kind) {
      case BusOpKind::ReadShared:
        return "ReadShared";
      case BusOpKind::ReadExclusive:
        return "ReadExclusive";
      case BusOpKind::Upgrade:
        return "Upgrade";
      case BusOpKind::WriteBack:
        return "WriteBack";
      case BusOpKind::WriteUpdate:
        return "WriteUpdate";
    }
    return "BusOp";
}

/** Distinguishes data-transfer async spans from the transaction
 *  lifetime spans they overlap (async pairs match on category + id;
 *  transaction ids never reach this bit). */
[[maybe_unused]] constexpr std::uint64_t kXferIdBit = 1ull << 63;

} // namespace

std::string
busOpName(BusOpKind kind)
{
    switch (kind) {
      case BusOpKind::ReadShared:
        return "ReadShared";
      case BusOpKind::ReadExclusive:
        return "ReadExclusive";
      case BusOpKind::Upgrade:
        return "Upgrade";
      case BusOpKind::WriteBack:
        return "WriteBack";
      case BusOpKind::WriteUpdate:
        return "WriteUpdate";
    }
    prefsim_panic("unknown bus op kind");
}

SplitBus::SplitBus(const BusTiming &timing, unsigned num_procs)
    : timing_(timing), num_procs_(num_procs)
{
    if (timing.dataTransfer == 0 || timing.dataTransfer > timing.totalLatency)
        prefsim_fatal("data transfer latency must be in [1, totalLatency]");
    if (timing.dataChannels == 0)
        prefsim_fatal("the bus needs at least one data channel");
    if (timing.upgradeOccupancy == 0)
        prefsim_fatal("upgrade occupancy must be at least one cycle");
    active_.reserve(timing.dataChannels);
}

std::uint64_t
SplitBus::request(const Transaction &t, Cycle now)
{
    Pending p;
    p.txn = t;
    p.id = next_id_++;
#if PREFSIM_TRACING
    p.requestedAt = now;
#endif
    ++stats_.opCount[static_cast<unsigned>(t.kind)];
    if (!BusTiming::isAddressClass(t.kind) && obs_.queueDepth)
        obs_.queueDepth->record(waiting_.size());
    if (BusTiming::isAddressClass(t.kind)) {
        // Address-class operations ride the conflict-free address bus:
        // fixed latency, never queued behind data transfers (3.3).
        p.readyAt = now + timing_.upgradeOccupancy;
        addr_ops_.push_back(p);
        return p.id;
    }
    // Data-carrying operations pay the address + memory-access pipeline
    // first; writebacks are ready immediately (data already buffered).
    p.readyAt = transfersData(t.kind) ? now + timing_.memoryPhase() : now;
    waiting_.push_back(p);
    return p.id;
}

void
SplitBus::promoteToDemand(std::uint64_t id)
{
    for (auto &p : waiting_) {
        if (p.id == id) {
            p.txn.demandWaiting = true;
            return;
        }
    }
    // Already in transfer (or completed): nothing to do — the access will
    // be satisfied when the transfer finishes.
    for (auto &a : active_) {
        if (a.pending.id == id)
            a.pending.txn.demandWaiting = true;
    }
}

int
SplitBus::pickNext(Cycle now)
{
    // Round-robin over processors starting at rr_next_, demand class
    // first (paper: arbitration "favors blocking loads over prefetches").
    //
    // The order is fully determined by (class, processor rank, per-
    // processor program order) and never by the interleaving in which
    // different processors' requests reached request(): distinct
    // processors always have distinct ranks — ownerless transactions
    // rank strictly after every processor, not as processor 0 — and
    // same-rank ties fall back to queue position, which for a single
    // processor is its program order. The parallel engine relies on
    // this to grant identically however its shards happened to race.
    int best = -1;
    bool best_demand = false;
    std::uint32_t best_rank = ~std::uint32_t{0};
    const std::uint32_t base = rr_next_ % num_procs_;
    for (std::size_t i = 0; i < waiting_.size(); ++i) {
        const Pending &p = waiting_[i];
        if (p.readyAt > now)
            continue;
        const bool demand = p.txn.demandWaiting || !p.txn.isPrefetch;
        std::uint32_t rank = num_procs_;
        if (p.txn.requester != kNoProc) {
            // requester and base are both < num_procs_, so the
            // wrap-around distance needs one conditional subtract, not
            // a division (this scan runs for every grant attempt on
            // the critical path of both engines).
            rank = p.txn.requester + num_procs_ - base;
            if (rank >= num_procs_)
                rank -= num_procs_;
        }
        if (best < 0 || (demand && !best_demand) ||
            (demand == best_demand && rank < best_rank)) {
            best = static_cast<int>(i);
            best_demand = demand;
            best_rank = rank;
            if (best_demand && best_rank == 0)
                break; // Unbeatable: demand class at the rotation head
                       // (same-rank ties keep the earliest position).
        }
    }
    return best;
}

unsigned
SplitBus::tick(Cycle now)
{
    unsigned completed = 0;
    // Complete address-class operations whose fixed latency elapsed.
    for (std::size_t i = 0; i < addr_ops_.size();) {
        if (now >= addr_ops_[i].readyAt) {
            const Transaction done = addr_ops_[i].txn;
            PREFSIM_TRACE(obs_.trace,
                          asyncSpan(obs_.trace->busTid(),
                                    opCName(done.kind), obs::TraceCat::Bus,
                                    addr_ops_[i].id,
                                    addr_ops_[i].requestedAt, now,
                                    done.lineBase, done.requester));
            addr_ops_.erase(addr_ops_.begin() +
                            static_cast<std::ptrdiff_t>(i));
            ++completed;
            if (completion_)
                completion_(done, now);
        } else {
            ++i;
        }
    }
    // Finish transfers whose occupancy has elapsed.
    for (std::size_t i = 0; i < active_.size();) {
        if (now >= active_[i].endsAt) {
            const Transaction done = active_[i].pending.txn;
            PREFSIM_TRACE(obs_.trace,
                          asyncSpan(obs_.trace->busTid(),
                                    opCName(done.kind), obs::TraceCat::Bus,
                                    active_[i].pending.id,
                                    active_[i].pending.requestedAt, now,
                                    done.lineBase, done.requester));
            active_.erase(active_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            ++completed;
            if (completion_)
                completion_(done, now);
        } else {
            ++i;
        }
    }
    // Grant free channels.
    while (active_.size() < timing_.dataChannels) {
        const int idx = pickNext(now);
        if (idx < 0)
            break;
        Active a;
        a.pending = waiting_[static_cast<std::size_t>(idx)];
        waiting_.erase(waiting_.begin() + idx);
        const Cycle occ = timing_.occupancy(a.pending.txn.kind);
        a.endsAt = now + occ;
        stats_.busyCycles += occ;
        const Cycle wait = now - a.pending.readyAt;
        const bool demand =
            a.pending.txn.demandWaiting || !a.pending.txn.isPrefetch;
        if (obs_.profile)
            obs_.profile->busGrant(a.pending.txn.lineBase, occ, demand);
        if (obs_.critpath)
            obs_.critpath->busGrant(a.pending.id, a.pending.readyAt, now);
        if (demand) {
            stats_.queueWaitDemand += wait;
            ++stats_.grantsDemand;
            if (obs_.arbWaitDemand)
                obs_.arbWaitDemand->record(wait);
        } else {
            stats_.queueWaitPrefetch += wait;
            ++stats_.grantsPrefetch;
            if (obs_.arbWaitPrefetch)
                obs_.arbWaitPrefetch->record(wait);
        }
        // Data-bus occupancy. With a single channel grants are strictly
        // sequential, so a synchronous span nests; with parallel
        // channels transfers overlap and need async pairing (the id bit
        // keeps them distinct from the transaction-lifetime spans).
        if (timing_.dataChannels == 1) {
            PREFSIM_TRACE(obs_.trace,
                          span(obs_.trace->busTid(), "transfer",
                               obs::TraceCat::Bus, now, a.endsAt,
                               a.pending.txn.lineBase,
                               a.pending.txn.requester));
        } else {
            PREFSIM_TRACE(obs_.trace,
                          asyncSpan(obs_.trace->busTid(), "transfer",
                                    obs::TraceCat::Bus,
                                    a.pending.id | kXferIdBit, now,
                                    a.endsAt, a.pending.txn.lineBase,
                                    a.pending.txn.requester));
        }
        rr_next_ = (a.pending.txn.requester == kNoProc
                        ? rr_next_
                        : a.pending.txn.requester + 1) %
                   std::max(1u, num_procs_);
        active_.push_back(a);
    }
    PREFSIM_VERIFY_BUS(*this);
    return completed;
}

bool
SplitBus::busy() const
{
    return !active_.empty() || !waiting_.empty() || !addr_ops_.empty();
}

Cycle
SplitBus::nextEventCycle(Cycle now) const
{
    return std::min(nextCompletionCycle(now), nextGrantCycle(now));
}

Cycle
SplitBus::nextCompletionCycle(Cycle now) const
{
    Cycle next = kNoCycle;
    for (const Pending &p : addr_ops_)
        next = std::min(next, p.readyAt);
    for (const Active &a : active_)
        next = std::min(next, a.endsAt);
    // Deadlines in the past fire at the next tick (tick() completes
    // anything with readyAt/endsAt <= now).
    return next == kNoCycle ? kNoCycle : std::max(next, now);
}

Cycle
SplitBus::nextGrantCycle(Cycle now) const
{
    if (active_.size() >= timing_.dataChannels)
        return kNoCycle; // Gated on a completion freeing a channel.
    Cycle next = kNoCycle;
    // A queued op can be granted as soon as its memory phase ends.
    for (const Pending &p : waiting_)
        next = std::min(next, p.readyAt);
    return next == kNoCycle ? kNoCycle : std::max(next, now);
}

std::vector<Transaction>
SplitBus::pendingTransactions() const
{
    std::vector<Transaction> out;
    out.reserve(active_.size() + waiting_.size() + addr_ops_.size());
    for (const Active &a : active_)
        out.push_back(a.pending.txn);
    for (const Pending &p : waiting_)
        out.push_back(p.txn);
    for (const Pending &p : addr_ops_)
        out.push_back(p.txn);
    return out;
}

bool
SplitBus::checkInvariants(std::string *why) const
{
    auto violate = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (active_.size() > timing_.dataChannels)
        return violate("bus.structure: more transfers in flight than data channels");
    std::vector<std::uint64_t> ids;
    ids.reserve(active_.size() + waiting_.size() + addr_ops_.size());
    for (const Active &a : active_)
        ids.push_back(a.pending.id);
    for (const Pending &p : waiting_)
        ids.push_back(p.id);
    for (const Pending &p : addr_ops_)
        ids.push_back(p.id);
    std::sort(ids.begin(), ids.end());
    if (std::adjacent_find(ids.begin(), ids.end()) != ids.end())
        return violate("bus.structure: duplicated bus transaction id");
    for (std::uint64_t id : ids) {
        if (id >= next_id_)
            return violate("bus.structure: transaction id from the future");
    }
    for (const Pending &p : addr_ops_) {
        if (!BusTiming::isAddressClass(p.txn.kind))
            return violate("bus.structure: data-carrying op queued on the address bus");
    }
    for (const Pending &p : waiting_) {
        if (BusTiming::isAddressClass(p.txn.kind))
            return violate("bus.structure: address-class op queued for the data bus");
    }
    return true;
}

} // namespace prefsim
