/**
 * @file
 * The per-processor data cache: set-associative (direct-mapped in the
 * paper's configuration), copy-back, lockup-free, with an optional
 * victim cache.
 *
 * Mechanism only — all protocol *decisions* (what state a fill installs
 * in, who gets invalidated) are made by the snooping memory system that
 * owns all the caches. The cache tracks frames, outstanding misses
 * (MSHRs, up to one demand plus a bounded number of prefetches), and the
 * "prefetched-but-lost" side table that classification uses to recognise
 * misses whose prefetched data disappeared before use.
 *
 * The victim cache (Jouppi) is the paper's own §4.3 suggestion for the
 * conflict misses prefetching introduces: a small fully-associative
 * buffer holding recently evicted lines, swapped back on a miss for a
 * one-cycle penalty instead of a bus transaction. It sits beside the
 * cache and is snooped with it.
 */

#ifndef PREFSIM_MEM_DATA_CACHE_HH
#define PREFSIM_MEM_DATA_CACHE_HH

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/cache_geometry.hh"
#include "common/types.hh"
#include "mem/bus_op.hh"
#include "mem/cache_line.hh"
#include "obs/metrics.hh"

namespace prefsim
{

namespace obs
{
class AttributionProfiler;
} // namespace obs

/**
 * Instrumentation hooks for one cache (see obs/obs.hh). The counters
 * are typically shared by every cache of one memory system (machine
 * totals); null pointers (the default) disable them.
 */
struct CacheObs
{
    /** Valid lines displaced out of the cache + victim-buffer pair. */
    obs::Counter *evictions = nullptr;
    /** Subset of evictions that forced a writeback (Modified lines). */
    obs::Counter *dirtyEvictions = nullptr;
    /** Subset of evictions displacing prefetched-but-never-used data. */
    obs::Counter *prefetchLostEvictions = nullptr;
    /** Per-line displaced-prefetch attribution (SimConfig::profile).
     *  Evictions only happen on fill/install paths, which are never
     *  replayed quietly — every call lands on the engine main thread. */
    obs::AttributionProfiler *profile = nullptr;
};

/** An outstanding miss (fill in flight on the bus). */
struct Mshr
{
    Addr lineBase = kNoAddr;
    /** State the fill will install in; may be downgraded (E->S) or
     *  killed (->I) by remote operations while in flight. */
    LineState targetState = LineState::Shared;
    bool isPrefetch = false;
    /** A CPU access is blocked on this fill. */
    bool demandWaiting = false;
    /** Word index of the blocked access (valid when demandWaiting). */
    std::uint32_t demandWord = 0;
    /** A remote invalidation hit the fill in flight: the line arrives
     *  dead (installs Invalid). */
    bool arriveInvalid = false;
    /** False-sharing attribution if arriveInvalid (word untouched). */
    bool invalFalseSharing = false;
    /** Bus transaction id (for priority promotion). */
    std::uint64_t busId = 0;
    /** Cycle a blocked demand access attached itself to this (prefetch)
     *  fill; valid when demandWaiting. The fill-completion-minus-attach
     *  gap is the prefetch's *lateness* — the residual latency the
     *  prefetch failed to hide. */
    Cycle demandAttachedAt = 0;
};

/** A dirty line displaced out of the cache+victim pair (needs a bus
 *  writeback). */
struct EvictedLine
{
    Addr lineBase = kNoAddr;
    bool dirty = false;
};

/**
 * Set-associative copy-back data cache with MSHRs and an optional
 * victim buffer.
 */
class DataCache
{
  public:
    DataCache(ProcId owner, const CacheGeometry &geom,
              unsigned max_prefetch_mshrs = 16,
              unsigned victim_entries = 0);

    const CacheGeometry &geometry() const { return geom_; }
    ProcId owner() const { return owner_; }

    /** @name Frame lookup. @{ */
    /** Frame in the cache proper whose tag matches @p addr's line
     *  (any state, including Invalid), or nullptr. */
    CacheFrame *findFrame(Addr addr);
    const CacheFrame *findFrame(Addr addr) const;

    /** Victim-buffer entry for @p addr's line, or nullptr. */
    CacheFrame *findVictim(Addr addr);

    /** Cache-proper frame or victim entry (a line is never in both). */
    CacheFrame *findAny(Addr addr);

    /** True iff the line is resident and valid in the cache proper. */
    bool resident(Addr addr) const;

    /** State of the line in the cache proper (Invalid if absent). */
    LineState stateOf(Addr addr) const;

    /** State of the line anywhere (cache proper or victim buffer). */
    LineState stateAnywhere(Addr addr) const;

    /** Record an LRU touch on the frame holding @p addr (hit path). */
    void touch(Addr addr);
    /** @} */

    /** @name MSHRs. @{ */
    Mshr *findMshr(Addr addr);
    const Mshr *findMshr(Addr addr) const;

    /** True if a new prefetch MSHR may be allocated. */
    bool prefetchMshrAvailable() const;

    /** Allocate an MSHR (panics on duplicates / prefetch overflow). */
    Mshr &allocateMshr(Addr line_base, LineState target, bool is_prefetch);

    /** Remove the MSHR for @p line_base and return it by value. */
    Mshr releaseMshr(Addr line_base);

    std::size_t numMshrs() const { return mshrs_.size(); }
    const std::vector<Mshr> &mshrs() const { return mshrs_; }
    unsigned maxPrefetchMshrs() const { return max_prefetch_; }
    /** @} */

    /** @name Prefetched-but-lost side table. @{ */
    void markPrefetchLost(Addr line_base) { lost_prefetch_.insert(line_base); }
    bool
    consumePrefetchLost(Addr line_base)
    {
        return lost_prefetch_.erase(line_base) != 0;
    }
    std::size_t prefetchLostEntries() const { return lost_prefetch_.size(); }
    /** @} */

    /**
     * Install a fill into its set, evicting the LRU occupant (invalid
     * ways are preferred victims). With a victim buffer, the evictee
     * moves there and @p evicted reports whatever the buffer displaced;
     * without one, @p evicted reports the evictee itself.
     *
     * @return the frame the line was installed into.
     */
    CacheFrame &install(Addr line_base, LineState state, bool by_prefetch,
                        EvictedLine &evicted);

    /**
     * Victim-buffer swap: if @p addr's line sits in the victim buffer,
     * move it back into its set (the set's victim drops into the
     * buffer — a true swap, so nothing is displaced).
     * @return the reinstated frame, or nullptr if not in the buffer.
     */
    CacheFrame *swapFromVictim(Addr addr);

    unsigned victimEntries() const { return victim_entries_; }
    std::size_t victimValidLines() const;

    /** @name Non-snooping prefetch data buffer (§3.1 alternative).
     * A Klaiber-Levy-style prefetch buffer beside the cache: prefetch
     * fills park here instead of the cache, and a demand access that
     * finds its line promotes it into the cache. The buffer does NOT
     * participate in snooping — which is exactly why shared data must
     * not be prefetched into it; the memory system counts (and
     * neutralises) any coherence violation that would result.
     * @{ */
    /** Enable the buffer with @p entries slots (0 disables). */
    void configurePrefetchDataBuffer(unsigned entries);
    unsigned prefetchDataBufferEntries() const { return pdb_.size(); }

    /** Park a prefetched line; the LRU occupant is discarded (and, if
     *  it was never used, marked prefetched-but-lost). */
    void parkPrefetchedLine(Addr line_base, LineState state);

    /** The buffered entry for @p addr, or nullptr. */
    CacheFrame *findParked(Addr addr);
    const CacheFrame *findParked(Addr addr) const;

    /**
     * Promote a parked line into the cache proper.
     * @return the installed frame, or nullptr if not parked;
     *         @p evicted reports any displaced dirty line.
     */
    CacheFrame *promoteParked(Addr addr, EvictedLine &evicted);
    /** @} */

    /** Count of valid lines in the cache proper (tests/invariants). */
    std::size_t validLines() const;

    /** Attach (or detach) instrumentation counters. */
    void setObs(const CacheObs &o) { obs_ = o; }

  private:
    /** Pick the victim way in @p addr's set (invalid before LRU). */
    std::uint32_t victimWay(Addr addr) const;

    /** Push @p frame's contents into the victim buffer; report what the
     *  buffer displaced (possibly nothing) via @p evicted. */
    void pushToVictim(const CacheFrame &frame, EvictedLine &evicted);

    /** Account an eviction (prefetch-lost marking, dirty reporting). */
    static void noteDisplaced(const CacheFrame &frame, EvictedLine &evicted,
                              DataCache &owner_cache);

    ProcId owner_;
    CacheGeometry geom_;
    unsigned max_prefetch_;
    unsigned victim_entries_;
    std::vector<CacheFrame> frames_;
    std::vector<std::uint64_t> last_use_; ///< Per frame, for LRU.
    std::uint64_t use_clock_ = 0;

    /** Victim buffer entries (kNoAddr tag = empty) + LRU clocks. */
    std::vector<CacheFrame> victim_;
    std::vector<std::uint64_t> victim_use_;

    /** Non-snooping prefetch data buffer + LRU clocks. */
    std::vector<CacheFrame> pdb_;
    std::vector<std::uint64_t> pdb_use_;

    std::vector<Mshr> mshrs_;
    std::unordered_set<Addr> lost_prefetch_;
    CacheObs obs_;
};

} // namespace prefsim

#endif // PREFSIM_MEM_DATA_CACHE_HH
