/**
 * @file
 * The contended interconnect: a split-transaction bus model.
 *
 * A transaction entering the bus first spends its contention-free phase
 * (total latency minus the data-transfer time) in the address/memory
 * pipeline, which the paper assumes has enough bank parallelism never to
 * be the bottleneck. It then queues for the data bus, which serves one
 * operation at a time. Arbitration is round-robin across processors and
 * always favours operations a CPU is blocked on over prefetches (§3.3).
 *
 * Upgrades (invalidations) carry no data; they occupy the contended
 * resource for a small fixed address-slot cost (see DESIGN.md §1,
 * substitution 4). Writebacks occupy it for a full transfer.
 */

#ifndef PREFSIM_MEM_SPLIT_BUS_HH
#define PREFSIM_MEM_SPLIT_BUS_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/bus_op.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace prefsim
{

namespace obs
{
class AttributionProfiler;
class CritPathRecorder;
} // namespace obs

/**
 * Instrumentation hooks for one bus (see obs/obs.hh). All pointers
 * default to null = disabled; each update costs one predictable branch.
 */
struct BusObs
{
    /** Data-bus requests already queued when a new one arrives. */
    obs::Histogram *queueDepth = nullptr;
    /** Cycles a ready demand-class op waited for the data bus. */
    obs::Histogram *arbWaitDemand = nullptr;
    /** Cycles a ready prefetch op waited for the data bus. */
    obs::Histogram *arbWaitPrefetch = nullptr;
    /** Per-line data-bus occupancy attribution (SimConfig::profile).
     *  Address-class upgrades never reach the grant path, so the
     *  per-line cycles sum exactly to BusStats::busyCycles. */
    obs::AttributionProfiler *profile = nullptr;
    /** Grant-edge sink for the critical-path analyzer
     *  (SimConfig::critpath). */
    obs::CritPathRecorder *critpath = nullptr;
    /** Per-run event sink (only ever set when PREFSIM_TRACING=1). */
    obs::TraceBuffer *trace = nullptr;
};

/** Timing parameters of the memory subsystem (paper §3.3). */
struct BusTiming
{
    /** Total uncontended memory latency in CPU cycles. */
    Cycle totalLatency = 100;
    /** Contended data-bus occupancy of one line transfer (4..32). */
    Cycle dataTransfer = 8;
    /** Contended occupancy of an address-only upgrade/invalidate. */
    Cycle upgradeOccupancy = 2;
    /**
     * Parallel data channels. 1 = the paper's single contended bus; a
     * large value approximates the contention-free interconnect of
     * Mowry-Gupta's DASH-cluster model (see 4.2 and
     * bench_mowry_gupta).
     */
    unsigned dataChannels = 1;

    /** Contention-free phase length of a data-carrying operation. */
    Cycle
    memoryPhase() const
    {
        return totalLatency > dataTransfer ? totalLatency - dataTransfer
                                           : 0;
    }

    /** Data-bus occupancy of @p kind (address-class ops never occupy
     *  the data bus: the paper's address bus is "relatively conflict
     *  free"). */
    Cycle
    occupancy(BusOpKind kind) const
    {
        return isAddressClass(kind) ? upgradeOccupancy : dataTransfer;
    }

    /** Upgrades are pure address traffic and ride the (uncontended)
     *  address bus: fixed latency, no data-bus queueing. Write-update
     *  broadcasts carry the written word, so they stay on the data
     *  bus (with their small occupancy). */
    static constexpr bool
    isAddressClass(BusOpKind kind)
    {
        return kind == BusOpKind::Upgrade;
    }

    /**
     * Conservative-PDES lookahead: the minimum number of cycles between
     * a request entering the bus and the earliest completion callback
     * it can fire, over every operation kind. Address-class ops
     * complete after their fixed occupancy; a writeback (ready
     * immediately) can be granted the same cycle and completes a full
     * transfer later; data fills pay the whole uncontended latency.
     * Any cross-processor influence travels through a completion, so a
     * request issued at cycle t cannot affect another processor before
     * t + requestLookahead() — the provable window the parallel engine
     * leans on (docs/simcore.md).
     */
    Cycle
    requestLookahead() const
    {
        return std::min(upgradeOccupancy, dataTransfer);
    }
};

/** Aggregate bus accounting. */
struct BusStats
{
    Cycle busyCycles = 0;       ///< Cycles the *data* bus was occupied
                                ///< (address-class ops excluded).
    std::uint64_t opCount[5] = {0, 0, 0, 0, 0}; ///< Indexed by BusOpKind.
    Cycle queueWaitDemand = 0;  ///< Data-bus queueing of demand ops.
    Cycle queueWaitPrefetch = 0;///< Data-bus queueing of prefetch ops.
    std::uint64_t grantsDemand = 0;
    std::uint64_t grantsPrefetch = 0;

    std::uint64_t
    totalOps() const
    {
        return opCount[0] + opCount[1] + opCount[2] + opCount[3] +
               opCount[4];
    }

    /** Data-bus utilisation over @p cycles (paper Table 2). */
    double
    utilization(Cycle cycles) const
    {
        return cycles ? static_cast<double>(busyCycles) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * The split-transaction bus scheduler.
 *
 * Owns no coherence logic: callers snoop at request time and register a
 * completion callback to install fills and wake processors.
 */
class SplitBus
{
  public:
    using CompletionFn = std::function<void(const Transaction &, Cycle)>;

    SplitBus(const BusTiming &timing, unsigned num_procs);

    /** Install the completion callback (one sink: the memory system). */
    void setCompletion(CompletionFn fn) { completion_ = std::move(fn); }

    /**
     * Enter @p t into the bus system at cycle @p now.
     * @return an opaque id usable with promoteToDemand().
     */
    std::uint64_t request(const Transaction &t, Cycle now);

    /**
     * Raise a pending prefetch operation to demand priority (a CPU access
     * reached a line whose prefetch is still in flight).
     */
    void promoteToDemand(std::uint64_t id);

    /**
     * Advance to cycle @p now: grant the data bus, fire completions.
     * @return the number of completions fired this cycle (the verify
     *         layer steps the machine completion-by-completion).
     */
    unsigned tick(Cycle now);

    /** True if any transaction is pending or in transfer. */
    bool busy() const;

    /**
     * Earliest future cycle at which tick() could change bus state:
     * an address op or transfer completing, or a queued operation
     * becoming grantable (only counted while a data channel is free —
     * with every channel busy the next grant is gated on a completion,
     * which the active-transfer bound already covers). Ticks strictly
     * before the returned cycle are provably no-ops; the event-driven
     * simulator core skips them. @return kNoCycle when the bus is idle.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Earliest cycle a completion callback could fire: an address op's
     * fixed latency or an active transfer's occupancy elapsing.
     * Completions install lines and wake processors, so they bound the
     * event core's fast-forward windows; grants (nextGrantCycle) do
     * not — they touch only bus-internal queues and statistics, so the
     * core folds them into the window by ticking the bus mid-gap.
     * @return kNoCycle when nothing is in flight.
     */
    Cycle nextCompletionCycle(Cycle now) const;

    /**
     * Earliest cycle a queued data operation could be granted a
     * channel: the minimum readyAt over the waiting queue while a
     * channel is free. With every channel busy the next grant is gated
     * on a completion, so this returns kNoCycle (the completion bound
     * covers it). A tick at the returned cycle performs the grant(s);
     * the following call then returns a strictly later cycle (or
     * kNoCycle), so grant-folding loops terminate.
     */
    Cycle nextGrantCycle(Cycle now) const;

    /**
     * End of the epoch window opening at cycle @p now: the earliest
     * cycle a completion could fire given everything already owned by
     * the bus *plus* any request that might still enter at or after
     * @p now (bounded by BusTiming::requestLookahead — the
     * contention-free latency floor). Cycles in [now, window) are a
     * provably completion-free span even against not-yet-issued
     * requests: the conservative-PDES synchronisation bound the
     * parallel engine's epochs are aligned to. Never returns a cycle
     * before now + 1 (the lookahead is at least one cycle by
     * construction: occupancies are validated non-zero).
     */
    Cycle
    epochWindow(Cycle now) const
    {
        return std::min(nextCompletionCycle(now),
                        now + timing_.requestLookahead());
    }

    /**
     * Snapshot of every transaction currently owned by the bus, in a
     * deterministic order (in transfer, then data-queue, then address
     * ops). Verification introspection: the model checker encodes this
     * into its state and the invariant suite cross-checks it against
     * the caches' MSHRs (no lost or duplicated transactions).
     */
    std::vector<Transaction> pendingTransactions() const;

    /**
     * Visit every owned transaction in the pendingTransactions() order
     * without materialising a vector (the runtime invariant hooks call
     * this per protocol step, so the copy was hot-path allocation).
     */
    template <typename Fn>
    void
    forEachPending(Fn &&fn) const
    {
        for (const Active &a : active_)
            fn(a.pending.txn);
        for (const Pending &p : waiting_)
            fn(p.txn);
        for (const Pending &p : addr_ops_)
            fn(p.txn);
    }

    /**
     * Structural bus invariants: transfer count within dataChannels,
     * unique transaction ids, no granted-but-unready operation. Shared
     * by the verify library and the PREFSIM_VERIFY runtime hooks.
     * @return true when everything holds; otherwise false with an
     *         explanation in @p why (when non-null).
     */
    bool checkInvariants(std::string *why = nullptr) const;

    const BusStats &stats() const { return stats_; }
    const BusTiming &timing() const { return timing_; }

    /** Operations waiting for a data channel right now (includes ops
     *  still in their contention-free memory phase). Interval-sampling
     *  snapshot of arbitration-queue depth. */
    std::size_t queuedOps() const { return waiting_.size(); }

    /** Transfers occupying data channels right now. */
    std::size_t activeTransfers() const { return active_.size(); }

    /** Zero the accumulated statistics (warmup exclusion). */
    void resetStats() { stats_ = BusStats{}; }

    /** Attach (or detach, with a default-constructed value)
     *  instrumentation sinks. */
    void setObs(const BusObs &o) { obs_ = o; }

  private:
    struct Pending
    {
        Transaction txn;
        std::uint64_t id;
        Cycle readyAt;  ///< When the contention-free phase ends.
#if PREFSIM_TRACING
        /** When request() entered it. Compiled out by default: the
         *  arbitration loop scans and shifts waiting_ constantly, so
         *  Pending's size is hot-path real estate; only the trace
         *  spans read this. */
        Cycle requestedAt = 0;
#endif
    };

    struct Active
    {
        Pending pending;
        Cycle endsAt = 0;
    };

    /** Pick the next ready transaction per arbitration policy. */
    int pickNext(Cycle now);

    BusTiming timing_;
    unsigned num_procs_;
    CompletionFn completion_;

    std::vector<Pending> waiting_; ///< Ready or in memory phase.
    std::vector<Active> active_;   ///< In transfer (<= dataChannels).
    std::vector<Pending> addr_ops_;///< Address-class ops in flight.
    std::uint64_t next_id_ = 1;
    ProcId rr_next_ = 0; ///< Round-robin arbitration pointer.

    BusStats stats_;
    BusObs obs_;
};

} // namespace prefsim

#endif // PREFSIM_MEM_SPLIT_BUS_HH
