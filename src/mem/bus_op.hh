/**
 * @file
 * Bus operation types and transactions.
 *
 * The paper's memory architecture (§3.3): a 100-cycle memory latency is
 * split into a contention-free portion (address transmission + memory
 * access, parallel across banks) and a contended data-bus transfer of
 * 4-32 cycles. Every coherence action that reaches the interconnect is a
 * Transaction; the SplitBus schedules them onto the contended resource.
 */

#ifndef PREFSIM_MEM_BUS_OP_HH
#define PREFSIM_MEM_BUS_OP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace prefsim
{

/** Kind of bus operation. */
enum class BusOpKind : std::uint8_t
{
    /** Fetch a line for reading; requester ends S (copies elsewhere) or
     *  E (Illinois private-clean, no other copies). */
    ReadShared,
    /** Fetch a line with ownership (write miss / exclusive prefetch);
     *  every other copy is invalidated. */
    ReadExclusive,
    /** Invalidate other copies of a line already held S (write hit on a
     *  shared line); address-only, no data transfer. */
    Upgrade,
    /** Copy-back of a dirty victim; no CPU waits for it. */
    WriteBack,
    /** Word broadcast updating the other copies of a shared line
     *  (write-update protocols only); address + one word. */
    WriteUpdate,
};

/** Display name of @p kind. */
std::string busOpName(BusOpKind kind);

/** True if the operation moves a full cache line over the data bus. */
constexpr bool
transfersData(BusOpKind kind)
{
    return kind == BusOpKind::ReadShared || kind == BusOpKind::ReadExclusive;
}

/** One outstanding bus operation. */
struct Transaction
{
    BusOpKind kind = BusOpKind::ReadShared;
    ProcId requester = kNoProc;
    /** Line base address. */
    Addr lineBase = kNoAddr;
    /** Word index (within the line) of the access that caused the
     *  operation; used for false-sharing attribution of invalidations. */
    std::uint32_t word = 0;
    /** The operation was initiated by a prefetch instruction. */
    bool isPrefetch = false;
    /** A stalled CPU is waiting on this operation (demand misses, and
     *  prefetches a later demand access attached itself to). Raises the
     *  operation to demand arbitration priority. */
    bool demandWaiting = false;
    /** Cycle the request entered the memory system. */
    Cycle issuedAt = 0;
};

} // namespace prefsim

#endif // PREFSIM_MEM_BUS_OP_HH
