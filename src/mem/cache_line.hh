/**
 * @file
 * Cache line state for the Illinois write-invalidate protocol.
 *
 * The Illinois protocol (Papamarcos & Patel) is MESI with cache-to-cache
 * sourcing. Its private-clean (Exclusive) state is what makes exclusive
 * prefetching meaningful: a read miss with no other cached copy — and an
 * exclusive prefetch — installs in E, so a later write needs no bus
 * operation (paper §3.3, §4.1).
 */

#ifndef PREFSIM_MEM_CACHE_LINE_HH
#define PREFSIM_MEM_CACHE_LINE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace prefsim
{

/** Illinois / MESI line states. */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,    ///< Clean, possibly cached elsewhere.
    Exclusive, ///< Private clean: no other cached copy.
    Modified,  ///< Private dirty.
};

/** Display name of @p s ("I", "S", "E", "M"). */
std::string lineStateName(LineState s);

/** True for E and M (no other cache holds a copy). */
constexpr bool
isPrivate(LineState s)
{
    return s == LineState::Exclusive || s == LineState::Modified;
}

/** True for any valid state. */
constexpr bool
isValid(LineState s)
{
    return s != LineState::Invalid;
}

/**
 * One direct-mapped cache frame.
 *
 * Beyond tag+state, the frame carries the provenance the paper's miss
 * taxonomy needs: whether the current residency was brought by a
 * prefetch and not yet used, which words the local CPU touched during
 * this residency (per-word false-sharing accounting), and — once the
 * line is invalidated — why, so the *next* local miss can be classified.
 */
struct CacheFrame
{
    /** Line base address of the current (or last) occupant;
     *  kNoAddr when the frame was never filled. */
    Addr tag = kNoAddr;
    LineState state = LineState::Invalid;

    /** Words the local CPU accessed during this residency. */
    std::uint32_t accessMask = 0;
    /** The residency was created by a prefetch... */
    bool broughtByPrefetch = false;
    /** ...and the CPU has since accessed the line. */
    bool usedSinceFill = false;

    /** @name Set when the frame is invalidated by a remote operation
     * (tag kept), consumed by the classification of the next local miss.
     * @{ */
    /** The invalidating write targeted a word the local CPU had not
     *  accessed during the residency: false sharing (paper §4.4). */
    bool invalFalseSharing = false;
    /** @} */

    /** Reset residency-scoped metadata on a fresh fill. */
    void
    beginResidency(Addr line_base, LineState s, bool by_prefetch)
    {
        tag = line_base;
        state = s;
        accessMask = 0;
        broughtByPrefetch = by_prefetch;
        usedSinceFill = false;
        invalFalseSharing = false;
    }
};

} // namespace prefsim

#endif // PREFSIM_MEM_CACHE_LINE_HH
