/**
 * @file
 * Coherence-protocol ablation: write-invalidate (the paper's Illinois
 * protocol) vs. a Firefly-style write-update protocol.
 *
 * The paper's central obstacle — invalidation misses that no
 * uniprocessor-style prefetcher can cover (§4.4) — is an artifact of
 * write-invalidate coherence. Under write-update those misses vanish by
 * construction... and are replaced by a broadcast on *every* write to
 * shared data, which lands on exactly the resource this machine is
 * short of: the bus. This bench quantifies that trade per workload, and
 * shows how it changes what prefetching can do (with no invalidation
 * misses, the oracle covers everything that remains).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "prefetch/inserter.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);

    auto protoSpec = [&](WorkloadKind w, Strategy s,
                         CoherenceProtocol proto, Cycle transfer) {
        ExperimentSpec spec = bench.makeSpec(w, false, s, transfer);
        spec.sim.protocol = proto;
        return spec;
    };

    const Cycle kTransfers[] = {4, 32};
    for (const Cycle transfer : kTransfers) {
        for (WorkloadKind w : allWorkloads()) {
            bench.enqueue(protoSpec(w, Strategy::NP,
                                    CoherenceProtocol::WriteInvalidate,
                                    transfer));
            bench.enqueue(protoSpec(w, Strategy::NP,
                                    CoherenceProtocol::WriteUpdate,
                                    transfer));
            bench.enqueue(protoSpec(w, Strategy::PREF,
                                    CoherenceProtocol::WriteUpdate,
                                    transfer));
        }
    }
    bench.runPending();

    std::cout << "=== Protocol ablation: write-invalidate (paper) vs "
                 "write-update ===\n\n";

    for (const Cycle transfer : kTransfers) {
        std::cout << "--- T=" << transfer << " ---\n";
        TextTable t({"workload", "inv: inval MR", "upd: inval MR",
                     "inv: bus ops/1k refs", "upd: bus ops/1k refs",
                     "upd/inv exec time", "upd PREF rel."});
        for (WorkloadKind w : allWorkloads()) {
            const SimStats &inv =
                bench
                    .run(protoSpec(w, Strategy::NP,
                                   CoherenceProtocol::WriteInvalidate,
                                   transfer))
                    .sim;
            const SimStats &upd =
                bench
                    .run(protoSpec(w, Strategy::NP,
                                   CoherenceProtocol::WriteUpdate,
                                   transfer))
                    .sim;
            const SimStats &upd_pref =
                bench
                    .run(protoSpec(w, Strategy::PREF,
                                   CoherenceProtocol::WriteUpdate,
                                   transfer))
                    .sim;
            auto ops_per_kref = [](const SimStats &s) {
                return TextTable::num(
                    1000.0 * static_cast<double>(s.bus.totalOps()) /
                        static_cast<double>(s.totalDemandRefs()),
                    1);
            };
            t.addRow({workloadName(w),
                      TextTable::percent(inv.invalidationMissRate(), 2),
                      TextTable::percent(upd.invalidationMissRate(), 2),
                      ops_per_kref(inv), ops_per_kref(upd),
                      TextTable::num(static_cast<double>(upd.cycles) /
                                     static_cast<double>(inv.cycles)),
                      TextTable::num(
                          static_cast<double>(upd_pref.cycles) /
                          static_cast<double>(upd.cycles))});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout
        << "reading the table: write-update removes every invalidation "
           "miss (column 3 is zero) but pays a bus operation per write "
           "to shared data; whether that wins depends on the "
           "write-sharing style — and with no invalidation misses left, "
           "the oracle prefetcher covers everything that remains "
           "(final column).\n";
    emitBenchTelemetry(opts, bench);
    return 0;
}
