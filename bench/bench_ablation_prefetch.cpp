/**
 * @file
 * Prefetching-mechanism ablations the paper discusses but does not
 * tabulate:
 *
 *  1. prefetch distance sweep (§4.3: "prefetching algorithms should
 *     strive to receive the prefetched data exactly on time" — late is
 *     cheap, too early loses data);
 *  2. prefetch buffer depth (§3.3: 16 was "sufficiently large to almost
 *     always prevent the processor from stalling");
 *  3. the read-then-write exclusive-prefetch compiler improvement the
 *     paper suggests at the end of §4.3 (saves upgrades);
 *  4. the §3.1 argument for cache prefetching over non-snooping
 *     prefetch buffers: restricting prefetches to provably unshared
 *     lines forfeits most of the benefit on sharing-heavy workloads.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "prefetch/inserter.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"

using namespace prefsim;

namespace
{

SimStats
runWith(const ParallelTrace &base, const StrategyParams &sp,
        const SimConfig &cfg)
{
    const AnnotatedTrace ann =
        annotateTrace(base, sp, CacheGeometry::paperDefault());
    return simulate(ann.trace, cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    WorkloadParams params = parseBenchArgs(argc, argv);
    Workbench bench(params);
    const Cycle kTransfer = 8;
    SimConfig cfg;
    cfg.timing.dataTransfer = kTransfer;

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 1: prefetch distance (mp3d, T=8) ===\n"
              << "(PREF uses 100 = the uncontended latency; LPD uses "
                 "400)\n\n";
    {
        const ParallelTrace &base = bench.baseTrace(WorkloadKind::Mp3d);
        const Cycle np_cycles =
            bench.run(WorkloadKind::Mp3d, false, Strategy::NP, kTransfer)
                .sim.cycles;
        TextTable t({"distance", "rel. exec time", "pf-in-progress",
                     "non-sharing misses", "prefetched-but-lost"});
        for (std::uint32_t d : {25u, 50u, 100u, 200u, 400u, 800u}) {
            StrategyParams sp;
            sp.distanceCycles = d;
            const SimStats s = runWith(base, sp, cfg);
            const MissBreakdown m = s.totalMisses();
            t.addRow({std::to_string(d),
                      TextTable::num(static_cast<double>(s.cycles) /
                                     static_cast<double>(np_cycles)),
                      TextTable::count(m.prefetchInProgress),
                      TextTable::count(m.nonSharing()),
                      TextTable::count(m.nonSharingPrefetched +
                                       m.invalPrefetched)});
        }
        t.print(std::cout);
        std::cout << "paper 4.3: longer distances eliminate "
                     "prefetch-in-progress misses but lose prefetched "
                     "data before use; the trade never pays.\n\n";
    }

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 2: prefetch buffer depth (mp3d, T=8) "
                 "===\n\n";
    {
        const ParallelTrace &base = bench.baseTrace(WorkloadKind::Mp3d);
        TextTable t({"depth", "exec cycles", "buffer-full stall cycles"});
        for (unsigned depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
            SimConfig c2 = cfg;
            c2.prefetchBufferDepth = depth;
            const AnnotatedTrace ann = annotateTrace(
                base, Strategy::PREF, CacheGeometry::paperDefault());
            const SimStats s = simulate(ann.trace, c2);
            Cycle stall = 0;
            for (const auto &p : s.procs)
                stall += p.stallPrefetchQueue;
            t.addRow({std::to_string(depth), TextTable::count(s.cycles),
                      TextTable::count(stall)});
        }
        t.print(std::cout);
        std::cout << "paper 3.3: a 16-deep buffer almost always "
                     "prevents prefetch-issue stalls.\n\n";
    }

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 3: read-then-write exclusive prefetch "
                 "(4.3's suggested compiler improvement) ===\n\n";
    {
        TextTable t({"workload", "EXCL upgrades", "EXCL+RTW upgrades",
                     "rtw prefetches", "EXCL rel. time",
                     "EXCL+RTW rel. time"});
        for (WorkloadKind w :
             {WorkloadKind::Topopt, WorkloadKind::Mp3d,
              WorkloadKind::Water}) {
            const ParallelTrace &base = bench.baseTrace(w);
            const Cycle np_cycles =
                bench.run(w, false, Strategy::NP, kTransfer).sim.cycles;

            StrategyParams excl = strategyParams(Strategy::EXCL);
            const AnnotatedTrace ann_e = annotateTrace(
                base, excl, CacheGeometry::paperDefault());
            const SimStats se = simulate(ann_e.trace, cfg);

            StrategyParams rtw = excl;
            rtw.exclusiveReadThenWrite = true;
            const AnnotatedTrace ann_r =
                annotateTrace(base, rtw, CacheGeometry::paperDefault());
            const SimStats sr = simulate(ann_r.trace, cfg);

            t.addRow({workloadName(w),
                      TextTable::count(se.totalUpgrades()),
                      TextTable::count(sr.totalUpgrades()),
                      TextTable::count(ann_r.stats.rtwExclusive),
                      TextTable::num(static_cast<double>(se.cycles) /
                                     static_cast<double>(np_cycles)),
                      TextTable::num(static_cast<double>(sr.cycles) /
                                     static_cast<double>(np_cycles))});
        }
        t.print(std::cout);
        std::cout << "expected: RTW converts read-prefetches that "
                     "precede writes into exclusive ones, removing "
                     "upgrade operations.\n\n";
    }

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 4: cache prefetching vs a non-snooping "
                 "target (3.1) ===\n"
              << "(privateLinesOnly drops every prefetch of shared "
                 "data, as a non-snooping buffer requires)\n\n";
    {
        TextTable t({"workload", "PREF prefetches", "buffer-legal",
                     "dropped (shared)", "cache-PREF rel.",
                     "buffer-PREF rel."});
        for (WorkloadKind w :
             {WorkloadKind::Mp3d, WorkloadKind::Pverify,
              WorkloadKind::Water}) {
            const ParallelTrace &base = bench.baseTrace(w);
            const Cycle np_cycles =
                bench.run(w, false, Strategy::NP, kTransfer).sim.cycles;

            // Cache prefetching: the paper's (and prefsim's) default.
            const AnnotatedTrace ann_c = annotateTrace(
                base, Strategy::PREF, CacheGeometry::paperDefault());
            const SimStats sc = simulate(ann_c.trace, cfg);

            // Non-snooping 16-entry prefetch data buffer: the compiler
            // may only prefetch provably unshared lines, and the fills
            // park beside the cache.
            StrategyParams po = strategyParams(Strategy::PREF);
            po.privateLinesOnly = true;
            const AnnotatedTrace ann_p =
                annotateTrace(base, po, CacheGeometry::paperDefault());
            SimConfig buf_cfg = cfg;
            buf_cfg.prefetchDataBufferEntries = 16;
            const SimStats sp = simulate(ann_p.trace, buf_cfg);
            std::uint64_t hazards = 0;
            for (const auto &ps : sp.procs)
                hazards += ps.bufferProtectionEvents;

            t.addRow({workloadName(w),
                      TextTable::count(ann_c.stats.inserted),
                      TextTable::count(ann_p.stats.inserted),
                      TextTable::count(ann_p.stats.droppedShared),
                      TextTable::num(static_cast<double>(sc.cycles) /
                                     static_cast<double>(np_cycles)),
                      TextTable::num(static_cast<double>(sp.cycles) /
                                     static_cast<double>(np_cycles))});
            if (hazards)
                std::cout << "  (" << workloadName(w) << ": " << hazards
                          << " buffer coherence hazards neutralised)\n";
        }
        t.print(std::cout);
        std::cout << "paper 3.1: \"no shared data can be prefetched\" "
                     "into a non-snooping buffer — which is why the "
                     "study (and prefsim) prefetch into the cache.\n";
    }
    return 0;
}
