/**
 * @file
 * Prefetching-mechanism ablations the paper discusses but does not
 * tabulate:
 *
 *  1. prefetch distance sweep (§4.3: "prefetching algorithms should
 *     strive to receive the prefetched data exactly on time" — late is
 *     cheap, too early loses data);
 *  2. prefetch buffer depth (§3.3: 16 was "sufficiently large to almost
 *     always prevent the processor from stalling");
 *  3. the read-then-write exclusive-prefetch compiler improvement the
 *     paper suggests at the end of §4.3 (saves upgrades);
 *  4. the §3.1 argument for cache prefetching over non-snooping
 *     prefetch buffers: restricting prefetches to provably unshared
 *     lines forfeits most of the benefit on sharing-heavy workloads.
 *
 * Every point is an ExperimentSpec (custom strategy parameters and
 * simulator configs included), so the whole ablation is one declared
 * sweep: parallel under --jobs, resumable under --cache-dir.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "prefetch/inserter.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);
    const Cycle kTransfer = 8;

    // Declare the full ablation grid before reading any result.
    const std::uint32_t kDistances[] = {25, 50, 100, 200, 400, 800};
    auto distanceSpec = [&](std::uint32_t d) {
        ExperimentSpec spec = bench.makeSpec(WorkloadKind::Mp3d, false,
                                             Strategy::PREF, kTransfer);
        StrategyParams sp;
        sp.distanceCycles = d;
        spec.strategyOverride = sp;
        return spec;
    };
    for (const std::uint32_t d : kDistances)
        bench.enqueue(distanceSpec(d));

    const unsigned kDepths[] = {1, 2, 4, 8, 16, 32};
    auto depthSpec = [&](unsigned depth) {
        ExperimentSpec spec = bench.makeSpec(WorkloadKind::Mp3d, false,
                                             Strategy::PREF, kTransfer);
        spec.sim.prefetchBufferDepth = depth;
        return spec;
    };
    for (const unsigned depth : kDepths)
        bench.enqueue(depthSpec(depth));

    const WorkloadKind kRtwWorkloads[] = {
        WorkloadKind::Topopt, WorkloadKind::Mp3d, WorkloadKind::Water};
    auto rtwSpec = [&](WorkloadKind w) {
        ExperimentSpec spec =
            bench.makeSpec(w, false, Strategy::EXCL, kTransfer);
        StrategyParams rtw = strategyParams(Strategy::EXCL);
        rtw.exclusiveReadThenWrite = true;
        spec.strategyOverride = rtw;
        return spec;
    };
    for (const WorkloadKind w : kRtwWorkloads) {
        bench.enqueue(w, false, Strategy::NP, kTransfer);
        bench.enqueue(w, false, Strategy::EXCL, kTransfer);
        bench.enqueue(rtwSpec(w));
    }

    const WorkloadKind kBufWorkloads[] = {
        WorkloadKind::Mp3d, WorkloadKind::Pverify, WorkloadKind::Water};
    auto bufferSpec = [&](WorkloadKind w) {
        ExperimentSpec spec =
            bench.makeSpec(w, false, Strategy::PREF, kTransfer);
        StrategyParams po = strategyParams(Strategy::PREF);
        po.privateLinesOnly = true;
        spec.strategyOverride = po;
        spec.sim.prefetchDataBufferEntries = 16;
        return spec;
    };
    for (const WorkloadKind w : kBufWorkloads) {
        bench.enqueue(w, false, Strategy::NP, kTransfer);
        bench.enqueue(w, false, Strategy::PREF, kTransfer);
        bench.enqueue(bufferSpec(w));
    }

    bench.runPending();

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 1: prefetch distance (mp3d, T=8) ===\n"
              << "(PREF uses 100 = the uncontended latency; LPD uses "
                 "400)\n\n";
    {
        const Cycle np_cycles =
            bench.run(WorkloadKind::Mp3d, false, Strategy::NP, kTransfer)
                .sim.cycles;
        TextTable t({"distance", "rel. exec time", "pf-in-progress",
                     "non-sharing misses", "prefetched-but-lost"});
        for (const std::uint32_t d : kDistances) {
            const SimStats &s = bench.run(distanceSpec(d)).sim;
            const MissBreakdown m = s.totalMisses();
            t.addRow({std::to_string(d),
                      TextTable::num(static_cast<double>(s.cycles) /
                                     static_cast<double>(np_cycles)),
                      TextTable::count(m.prefetchInProgress),
                      TextTable::count(m.nonSharing()),
                      TextTable::count(m.nonSharingPrefetched +
                                       m.invalPrefetched)});
        }
        t.print(std::cout);
        std::cout << "paper 4.3: longer distances eliminate "
                     "prefetch-in-progress misses but lose prefetched "
                     "data before use; the trade never pays.\n\n";
    }

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 2: prefetch buffer depth (mp3d, T=8) "
                 "===\n\n";
    {
        TextTable t({"depth", "exec cycles", "buffer-full stall cycles"});
        for (const unsigned depth : kDepths) {
            const SimStats &s = bench.run(depthSpec(depth)).sim;
            Cycle stall = 0;
            for (const auto &p : s.procs)
                stall += p.stallPrefetchQueue;
            t.addRow({std::to_string(depth), TextTable::count(s.cycles),
                      TextTable::count(stall)});
        }
        t.print(std::cout);
        std::cout << "paper 3.3: a 16-deep buffer almost always "
                     "prevents prefetch-issue stalls.\n\n";
    }

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 3: read-then-write exclusive prefetch "
                 "(4.3's suggested compiler improvement) ===\n\n";
    {
        TextTable t({"workload", "EXCL upgrades", "EXCL+RTW upgrades",
                     "rtw prefetches", "EXCL rel. time",
                     "EXCL+RTW rel. time"});
        for (const WorkloadKind w : kRtwWorkloads) {
            const Cycle np_cycles =
                bench.run(w, false, Strategy::NP, kTransfer).sim.cycles;
            const SimStats &se =
                bench.run(w, false, Strategy::EXCL, kTransfer).sim;
            const ExperimentResult &rr = bench.run(rtwSpec(w));

            t.addRow({workloadName(w),
                      TextTable::count(se.totalUpgrades()),
                      TextTable::count(rr.sim.totalUpgrades()),
                      TextTable::count(rr.annotate.rtwExclusive),
                      TextTable::num(static_cast<double>(se.cycles) /
                                     static_cast<double>(np_cycles)),
                      TextTable::num(static_cast<double>(rr.sim.cycles) /
                                     static_cast<double>(np_cycles))});
        }
        t.print(std::cout);
        std::cout << "expected: RTW converts read-prefetches that "
                     "precede writes into exclusive ones, removing "
                     "upgrade operations.\n\n";
    }

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 4: cache prefetching vs a non-snooping "
                 "target (3.1) ===\n"
              << "(privateLinesOnly drops every prefetch of shared "
                 "data, as a non-snooping buffer requires)\n\n";
    {
        TextTable t({"workload", "PREF prefetches", "buffer-legal",
                     "dropped (shared)", "cache-PREF rel.",
                     "buffer-PREF rel."});
        for (const WorkloadKind w : kBufWorkloads) {
            const Cycle np_cycles =
                bench.run(w, false, Strategy::NP, kTransfer).sim.cycles;

            // Cache prefetching: the paper's (and prefsim's) default.
            const ExperimentResult &rc =
                bench.run(w, false, Strategy::PREF, kTransfer);

            // Non-snooping 16-entry prefetch data buffer: the compiler
            // may only prefetch provably unshared lines, and the fills
            // park beside the cache.
            const ExperimentResult &rp = bench.run(bufferSpec(w));
            std::uint64_t hazards = 0;
            for (const auto &ps : rp.sim.procs)
                hazards += ps.bufferProtectionEvents;

            t.addRow({workloadName(w),
                      TextTable::count(rc.annotate.inserted),
                      TextTable::count(rp.annotate.inserted),
                      TextTable::count(rp.annotate.droppedShared),
                      TextTable::num(static_cast<double>(rc.sim.cycles) /
                                     static_cast<double>(np_cycles)),
                      TextTable::num(static_cast<double>(rp.sim.cycles) /
                                     static_cast<double>(np_cycles))});
            if (hazards)
                std::cout << "  (" << workloadName(w) << ": " << hazards
                          << " buffer coherence hazards neutralised)\n";
        }
        t.print(std::cout);
        std::cout << "paper 3.1: \"no shared data can be prefetched\" "
                     "into a non-snooping buffer — which is why the "
                     "study (and prefsim) prefetch into the cache.\n";
    }
    emitBenchTelemetry(opts, bench);
    return 0;
}
