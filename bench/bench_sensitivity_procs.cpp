/**
 * @file
 * Processor-count sensitivity (DESIGN.md substitution 3).
 *
 * The paper's Table 1 lists a per-program process count that is
 * illegible in the surviving scan; the reproduction uses 16 everywhere.
 * This bench shows the phenomena the study measures are robust to that
 * choice: at 4/8/16 processors, prefetching still trades CPU misses for
 * bus demand, the miss-heavy workloads still saturate first, and the
 * fast-bus gains still shrink (or invert) as the bus fills.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions base = parseBenchArgs(argc, argv);

    std::cout << "=== Sensitivity: processor count ===\n\n";
    for (unsigned procs : {4u, 8u, 16u}) {
        BenchOptions o = base;
        o.params.numProcs = procs;
        SweepEngine bench = makeEngine(o);
        bench.enqueueGrid(allWorkloads(), {false},
                          {Strategy::NP, Strategy::PREF}, {4, 32});
        bench.runPending();
        std::cout << "--- " << procs << " processors ---\n";
        TextTable t({"workload", "NP bus@4", "NP bus@32", "NP util@4",
                     "PREF rel@4", "PREF rel@32"});
        for (WorkloadKind w : allWorkloads()) {
            const auto &b4 = bench.run(w, false, Strategy::NP, 4);
            const auto &b32 = bench.run(w, false, Strategy::NP, 32);
            t.addRow({workloadName(w),
                      TextTable::num(b4.sim.busUtilization()),
                      TextTable::num(b32.sim.busUtilization()),
                      TextTable::num(b4.sim.avgProcUtilization()),
                      TextTable::num(bench.relativeExecTime(
                          w, false, Strategy::PREF, 4)),
                      TextTable::num(bench.relativeExecTime(
                          w, false, Strategy::PREF, 32))});
        }
        t.print(std::cout);
        std::cout << "\n";
        // Telemetry covers the 16-processor sweep (the paper's
        // configuration); earlier iterations' engines are discarded.
        if (procs == 16u)
            emitBenchTelemetry(o, bench);
    }
    std::cout << "expected: more processors -> higher bus demand -> "
                 "earlier saturation and smaller (or negative) "
                 "prefetching gains at T=32; the workload ordering is "
                 "stable.\n";
    return 0;
}
