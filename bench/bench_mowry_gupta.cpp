/**
 * @file
 * Reproduces the paper's §4.2 reconciliation with Mowry & Gupta, who
 * reported far larger multiprocessor prefetching speedups. The paper
 * names three reasons; the two architectural ones are measurable here:
 *
 *   1. "they eliminated bus contention from their model by simulating
 *      only one processor per cluster" — approximated by a 16-channel
 *      (effectively contention-free) data interconnect;
 *   2. "they began with much higher miss rates due to their choice of
 *      simulated caches (for most simulations a 4 KB second-level
 *      cache)... processor utilizations in the .11 to .19 range" —
 *      approximated by shrinking the cache to 4 KB.
 *
 * Expectation: on the paper's machine prefetching gains are modest and
 * die at saturation; removing contention lifts the ceiling, and the
 * tiny cache adds miss headroom until speedups reach the >1.5x regime
 * Mowry & Gupta reported.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "prefetch/inserter.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"

using namespace prefsim;

namespace
{

struct Point
{
    double npUtil;
    double prefSpeedup;
    double pwsSpeedup;
};

constexpr WorkloadKind kWorkloads[] = {
    WorkloadKind::Mp3d, WorkloadKind::Pverify, WorkloadKind::LocusRoute};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);
    const Cycle kTransfer = 16;

    const CacheGeometry paper_cache = CacheGeometry::paperDefault();
    const CacheGeometry tiny_cache(4 * 1024, 32, 1);

    auto machineSpec = [&](WorkloadKind w, Strategy s,
                           const CacheGeometry &geom, unsigned channels) {
        ExperimentSpec spec = bench.makeSpec(w, false, s, kTransfer);
        spec.geometry = geom;
        spec.sim.timing.dataChannels = channels;
        return spec;
    };
    auto measure = [&](WorkloadKind w, const CacheGeometry &geom,
                       unsigned channels) {
        const SimStats &np =
            bench.run(machineSpec(w, Strategy::NP, geom, channels)).sim;
        const SimStats &pref =
            bench.run(machineSpec(w, Strategy::PREF, geom, channels)).sim;
        const SimStats &pws =
            bench.run(machineSpec(w, Strategy::PWS, geom, channels)).sim;
        return Point{np.avgProcUtilization(),
                     static_cast<double>(np.cycles) /
                         static_cast<double>(pref.cycles),
                     static_cast<double>(np.cycles) /
                         static_cast<double>(pws.cycles)};
    };

    for (const WorkloadKind w : kWorkloads) {
        for (const Strategy s :
             {Strategy::NP, Strategy::PREF, Strategy::PWS}) {
            bench.enqueue(machineSpec(w, s, paper_cache, 1));
            bench.enqueue(machineSpec(w, s, paper_cache, 16));
            bench.enqueue(machineSpec(w, s, tiny_cache, 16));
        }
    }
    bench.runPending();

    std::cout
        << "=== 4.2 reconciliation with Mowry & Gupta (T=" << kTransfer
        << ") ===\n"
        << "machine A: the paper's (one contended data bus, 32 KB "
           "caches)\n"
        << "machine B: contention-free interconnect (16 data channels)\n"
        << "machine C: contention-free + 4 KB caches (their miss-rate "
           "regime)\n\n";

    TextTable t({"workload", "A util/PREF/PWS", "B util/PREF/PWS",
                 "C util/PREF/PWS"});
    for (const WorkloadKind w : kWorkloads) {
        const Point a = measure(w, paper_cache, 1);
        const Point b = measure(w, paper_cache, 16);
        const Point c = measure(w, tiny_cache, 16);
        auto cell = [](const Point &p) {
            return TextTable::num(p.npUtil) + " / " +
                   TextTable::num(p.prefSpeedup) + "x / " +
                   TextTable::num(p.pwsSpeedup) + "x";
        };
        t.addRow({workloadName(w), cell(a), cell(b), cell(c)});
    }
    t.print(std::cout);

    std::cout
        << "\nexpected: A shows the paper's modest, saturation-bound "
           "gains; B lifts the contention ceiling; C starts from "
           "utilizations near Mowry-Gupta's .11-.19 and prefetching "
           "recovers multiples, matching their large reported "
           "speedups. The contrast is the paper's whole point: the "
           "benefit of prefetching is a property of the memory system, "
           "not of prefetching.\n";
    emitBenchTelemetry(opts, bench);
    return 0;
}
