/**
 * @file
 * Cache-organisation ablations: the sensitivity claims of §3.3 and the
 * conflict-mitigation suggestions of §4.3.
 *
 *  1. associativity and a small victim cache "would likely reduce" the
 *     conflict misses prefetching introduces (§4.3) — measured on
 *     Topopt, the paper's conflict-heavy workload;
 *  2. larger caches reduce non-sharing misses, making invalidation
 *     misses dominant (§3.3);
 *  3. larger block sizes increase false sharing and thus invalidation
 *     misses (§3.3, confirming Eggers-Jeremiassen).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "prefetch/inserter.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"

using namespace prefsim;

namespace
{

struct RunOut
{
    SimStats np;
    SimStats pref;
};

RunOut
runBoth(const ParallelTrace &base, const CacheGeometry &geom,
        unsigned victim_entries)
{
    SimConfig cfg;
    cfg.timing.dataTransfer = 8;
    cfg.geometry = geom;
    cfg.victimEntries = victim_entries;

    RunOut out;
    const AnnotatedTrace np = annotateTrace(base, Strategy::NP, geom);
    out.np = simulate(np.trace, cfg);
    const AnnotatedTrace pref = annotateTrace(base, Strategy::PREF, geom);
    out.pref = simulate(pref.trace, cfg);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    WorkloadParams params = parseBenchArgs(argc, argv);
    Workbench bench(params);

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 1: associativity & victim cache vs the "
                 "conflicts prefetching introduces (topopt, T=8) ===\n\n";
    {
        const ParallelTrace &base = bench.baseTrace(WorkloadKind::Topopt);
        TextTable t({"organisation", "NP non-shr misses",
                     "PREF non-shr misses", "victim hits (NP)",
                     "PREF rel. time"});
        struct Org
        {
            const char *name;
            std::uint32_t ways;
            unsigned victims;
        };
        for (const Org org :
             {Org{"direct-mapped (paper)", 1, 0},
              Org{"DM + 4-entry victim cache", 1, 4},
              Org{"DM + 16-entry victim cache", 1, 16},
              Org{"2-way LRU", 2, 0}, Org{"4-way LRU", 4, 0}}) {
            const CacheGeometry geom(32 * 1024, 32, org.ways);
            const RunOut r = runBoth(base, geom, org.victims);
            std::uint64_t victim_hits = 0;
            for (const auto &p : r.np.procs)
                victim_hits += p.victimHits;
            t.addRow({org.name,
                      TextTable::count(r.np.totalMisses().nonSharing()),
                      TextTable::count(r.pref.totalMisses().nonSharing()),
                      TextTable::count(victim_hits),
                      TextTable::num(static_cast<double>(r.pref.cycles) /
                                     static_cast<double>(r.np.cycles))});
        }
        t.print(std::cout);
        std::cout << "paper 4.3: \"the magnitude of this conflict ... "
                     "would likely be reduced by a victim cache or a "
                     "set-associative cache.\"\n\n";
    }

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 2: cache size (pverify, NP, T=8) ===\n\n";
    {
        const ParallelTrace &base = bench.baseTrace(WorkloadKind::Pverify);
        TextTable t({"cache", "non-shr MR", "inval MR", "inval share"});
        for (std::uint32_t kb : {16u, 32u, 64u, 128u, 256u}) {
            const CacheGeometry geom(kb * 1024, 32, 1);
            SimConfig cfg;
            cfg.timing.dataTransfer = 8;
            cfg.geometry = geom;
            const AnnotatedTrace ann = annotateTrace(base, Strategy::NP,
                                                     geom);
            const SimStats s = simulate(ann.trace, cfg);
            const MissBreakdown m = s.totalMisses();
            const auto refs = s.totalDemandRefs();
            t.addRow({std::to_string(kb) + " KB",
                      TextTable::percent(
                          static_cast<double>(m.nonSharing()) /
                              static_cast<double>(refs),
                          2),
                      TextTable::percent(s.invalidationMissRate(), 2),
                      TextTable::percent(
                          m.cpu() ? static_cast<double>(m.invalidation()) /
                                        static_cast<double>(m.cpu())
                                  : 0.0,
                          0)});
        }
        t.print(std::cout);
        std::cout << "paper 3.3: \"with larger caches, non-sharing "
                     "misses were reduced, making invalidation miss "
                     "effects much more dominant.\"\n\n";
    }

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 3: block size (topopt + pverify, NP, T=8) "
                 "===\n\n";
    {
        TextTable t({"workload", "block", "inval MR", "FS MR",
                     "FS share of invals"});
        for (WorkloadKind w :
             {WorkloadKind::Topopt, WorkloadKind::Pverify}) {
            const ParallelTrace &base = bench.baseTrace(w);
            for (std::uint32_t block : {16u, 32u, 64u, 128u}) {
                const CacheGeometry geom(32 * 1024, block, 1);
                SimConfig cfg;
                cfg.timing.dataTransfer = 8;
                cfg.geometry = geom;
                const AnnotatedTrace ann =
                    annotateTrace(base, Strategy::NP, geom);
                const SimStats s = simulate(ann.trace, cfg);
                const MissBreakdown m = s.totalMisses();
                t.addRow(
                    {workloadName(w), std::to_string(block) + " B",
                     TextTable::percent(s.invalidationMissRate(), 2),
                     TextTable::percent(s.falseSharingMissRate(), 2),
                     TextTable::percent(
                         m.invalidation()
                             ? static_cast<double>(m.falseSharing) /
                                   static_cast<double>(m.invalidation())
                             : 0.0,
                         0)});
            }
            t.addRule();
        }
        t.print(std::cout);
        std::cout << "paper 3.3: \"larger block sizes increased false "
                     "sharing and thus the total number of invalidation "
                     "misses.\"\n";
    }
    return 0;
}
