/**
 * @file
 * Cache-organisation ablations: the sensitivity claims of §3.3 and the
 * conflict-mitigation suggestions of §4.3.
 *
 *  1. associativity and a small victim cache "would likely reduce" the
 *     conflict misses prefetching introduces (§4.3) — measured on
 *     Topopt, the paper's conflict-heavy workload;
 *  2. larger caches reduce non-sharing misses, making invalidation
 *     misses dominant (§3.3);
 *  3. larger block sizes increase false sharing and thus invalidation
 *     misses (§3.3, confirming Eggers-Jeremiassen).
 *
 * Each organisation is an ExperimentSpec with its own geometry, so the
 * whole ablation is one declared sweep: parallel under --jobs,
 * resumable under --cache-dir.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "prefetch/inserter.hh"
#include "sim/simulator.hh"
#include "stats/table.hh"

using namespace prefsim;

namespace
{

struct Org
{
    const char *name;
    std::uint32_t ways;
    unsigned victims;
};

constexpr Org kOrgs[] = {Org{"direct-mapped (paper)", 1, 0},
                         Org{"DM + 4-entry victim cache", 1, 4},
                         Org{"DM + 16-entry victim cache", 1, 16},
                         Org{"2-way LRU", 2, 0}, Org{"4-way LRU", 4, 0}};

constexpr std::uint32_t kCacheKb[] = {16, 32, 64, 128, 256};
constexpr std::uint32_t kBlocks[] = {16, 32, 64, 128};
constexpr WorkloadKind kBlockWorkloads[] = {WorkloadKind::Topopt,
                                            WorkloadKind::Pverify};

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);
    const Cycle kTransfer = 8;

    auto orgSpec = [&](const Org &org, Strategy s) {
        ExperimentSpec spec = bench.makeSpec(WorkloadKind::Topopt, false,
                                             s, kTransfer);
        spec.geometry = CacheGeometry(32 * 1024, 32, org.ways);
        spec.sim.victimEntries = org.victims;
        return spec;
    };
    auto sizeSpec = [&](std::uint32_t kb) {
        ExperimentSpec spec = bench.makeSpec(WorkloadKind::Pverify, false,
                                             Strategy::NP, kTransfer);
        spec.geometry = CacheGeometry(kb * 1024, 32, 1);
        return spec;
    };
    auto blockSpec = [&](WorkloadKind w, std::uint32_t block) {
        ExperimentSpec spec =
            bench.makeSpec(w, false, Strategy::NP, kTransfer);
        spec.geometry = CacheGeometry(32 * 1024, block, 1);
        return spec;
    };

    for (const Org &org : kOrgs) {
        bench.enqueue(orgSpec(org, Strategy::NP));
        bench.enqueue(orgSpec(org, Strategy::PREF));
    }
    for (const std::uint32_t kb : kCacheKb)
        bench.enqueue(sizeSpec(kb));
    for (const WorkloadKind w : kBlockWorkloads) {
        for (const std::uint32_t block : kBlocks)
            bench.enqueue(blockSpec(w, block));
    }
    bench.runPending();

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 1: associativity & victim cache vs the "
                 "conflicts prefetching introduces (topopt, T=8) ===\n\n";
    {
        TextTable t({"organisation", "NP non-shr misses",
                     "PREF non-shr misses", "victim hits (NP)",
                     "PREF rel. time"});
        for (const Org &org : kOrgs) {
            const SimStats &np = bench.run(orgSpec(org, Strategy::NP)).sim;
            const SimStats &pref =
                bench.run(orgSpec(org, Strategy::PREF)).sim;
            std::uint64_t victim_hits = 0;
            for (const auto &p : np.procs)
                victim_hits += p.victimHits;
            t.addRow({org.name,
                      TextTable::count(np.totalMisses().nonSharing()),
                      TextTable::count(pref.totalMisses().nonSharing()),
                      TextTable::count(victim_hits),
                      TextTable::num(static_cast<double>(pref.cycles) /
                                     static_cast<double>(np.cycles))});
        }
        t.print(std::cout);
        std::cout << "paper 4.3: \"the magnitude of this conflict ... "
                     "would likely be reduced by a victim cache or a "
                     "set-associative cache.\"\n\n";
    }

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 2: cache size (pverify, NP, T=8) ===\n\n";
    {
        TextTable t({"cache", "non-shr MR", "inval MR", "inval share"});
        for (const std::uint32_t kb : kCacheKb) {
            const SimStats &s = bench.run(sizeSpec(kb)).sim;
            const MissBreakdown m = s.totalMisses();
            const auto refs = s.totalDemandRefs();
            t.addRow({std::to_string(kb) + " KB",
                      TextTable::percent(
                          static_cast<double>(m.nonSharing()) /
                              static_cast<double>(refs),
                          2),
                      TextTable::percent(s.invalidationMissRate(), 2),
                      TextTable::percent(
                          m.cpu() ? static_cast<double>(m.invalidation()) /
                                        static_cast<double>(m.cpu())
                                  : 0.0,
                          0)});
        }
        t.print(std::cout);
        std::cout << "paper 3.3: \"with larger caches, non-sharing "
                     "misses were reduced, making invalidation miss "
                     "effects much more dominant.\"\n\n";
    }

    // ------------------------------------------------------------------
    std::cout << "=== Ablation 3: block size (topopt + pverify, NP, T=8) "
                 "===\n\n";
    {
        TextTable t({"workload", "block", "inval MR", "FS MR",
                     "FS share of invals"});
        for (const WorkloadKind w : kBlockWorkloads) {
            for (const std::uint32_t block : kBlocks) {
                const SimStats &s = bench.run(blockSpec(w, block)).sim;
                const MissBreakdown m = s.totalMisses();
                t.addRow(
                    {workloadName(w), std::to_string(block) + " B",
                     TextTable::percent(s.invalidationMissRate(), 2),
                     TextTable::percent(s.falseSharingMissRate(), 2),
                     TextTable::percent(
                         m.invalidation()
                             ? static_cast<double>(m.falseSharing) /
                                   static_cast<double>(m.invalidation())
                             : 0.0,
                         0)});
            }
            t.addRule();
        }
        t.print(std::cout);
        std::cout << "paper 3.3: \"larger block sizes increased false "
                     "sharing and thus the total number of invalidation "
                     "misses.\"\n";
    }
    emitBenchTelemetry(opts, bench);
    return 0;
}
