/**
 * @file
 * Shared option parsing for the bench harness.
 *
 * Every reproduction binary accepts:
 *   --refs N    demand references per processor (default 100000)
 *   --procs N   processor count (default 16)
 *   --seed N    workload RNG seed (default 12345)
 *   --quiet     suppress informational logging
 */

#ifndef PREFSIM_BENCH_BENCH_COMMON_HH
#define PREFSIM_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "common/log.hh"
#include "core/experiment.hh"
#include "stats/table.hh"

namespace prefsim
{

/** Strip a boolean flag (e.g. "--csv") from argv; true if present. */
inline bool
stripFlag(int &argc, char **argv, const std::string &flag)
{
    bool found = false;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i]) {
            found = true;
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return found;
}

/** Parse the common bench options into WorkloadParams. */
inline WorkloadParams
parseBenchArgs(int argc, char **argv)
{
    WorkloadParams p = defaultWorkloadParams();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                prefsim_fatal("missing value for option ", arg);
            return argv[++i];
        };
        if (arg == "--refs") {
            p.refsPerProc = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--procs") {
            p.numProcs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--seed") {
            p.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--quiet") {
            setQuiet(true);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "options: --refs N --procs N --seed N --quiet\n";
            std::exit(0);
        } else {
            prefsim_fatal("unknown option ", arg);
        }
    }
    return p;
}

/** Format a measured/paper pair: "0.27 (paper 0.27)". */
inline std::string
withPaper(double measured, std::optional<double> reference, int prec = 2)
{
    std::string s = TextTable::num(measured, prec);
    if (reference)
        s += " (" + TextTable::num(*reference, prec) + ")";
    return s;
}

} // namespace prefsim

#endif // PREFSIM_BENCH_BENCH_COMMON_HH
