/**
 * @file
 * Shared sweep-runner entry point for the bench harness.
 *
 * Every reproduction binary accepts one uniform option set (any order):
 *   --refs N         demand references per processor (default 100000)
 *   --procs N        processor count (default 16)
 *   --seed N         workload RNG seed (default 12345)
 *   --jobs N         sweep worker threads (0 = all cores; default 1)
 *   --cache-dir PATH persist results to an on-disk cache at PATH
 *   --no-cache       ignore any --cache-dir; recompute everything
 *   --engine E       simulation core: event (default), cycle or parallel
 *   --shards N       worker shards per parallel-engine simulation
 *   --csv            machine-readable CSV output (where supported)
 *   --quiet          suppress informational logging
 *   --log-level L    minimum log severity: error, warn, info, debug
 *   --metrics-out F  write sweep telemetry + simulator metrics JSON to F
 *   --trace-out F    write a Chrome trace-event JSON document to F
 *                    (needs a -DPREFSIM_TRACING=ON build to carry events)
 *   --sample-interval N  capture an interval time-series sample every N
 *                    simulated cycles (0 = off)
 *   --timeseries-out F  write the prefsim-timeseries-v1 JSON document
 *                    to F (defaults --sample-interval to 10000 when not
 *                    given explicitly)
 *   --profile-out F  write the prefsim-profile-v1 per-line contention
 *                    attribution JSON document to F
 *   --critpath-out F write the prefsim-critpath-v1 critical-path
 *                    analysis JSON document to F
 *   --whatif-validate  re-simulate each point with an infinitely wide
 *                    bus and attach the measured cycles to the critpath
 *                    run (requires --critpath-out; ~2x simulation cost)
 *
 * parseBenchArgs handles the full set in a single pass, so flags can be
 * given in any order; makeEngine turns the result into a SweepEngine.
 * Binaries that want --metrics-out/--trace-out to produce output call
 * emitBenchTelemetry(opts, engine) after their sweep completes.
 */

#ifndef PREFSIM_BENCH_BENCH_COMMON_HH
#define PREFSIM_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/log.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "stats/table.hh"

namespace prefsim
{

/** Everything a reproduction binary needs from its command line. */
struct BenchOptions
{
    WorkloadParams params = defaultWorkloadParams();
    SweepOptions sweep;
    bool csv = false;
    /** Telemetry/metrics JSON destination (empty = none). */
    std::string metricsOut;
    /** Chrome trace-event JSON destination (empty = none). */
    std::string traceOut;
    /** Interval time-series JSON destination (empty = none). */
    std::string timeseriesOut;
    /** Per-line attribution profile JSON destination (empty = none). */
    std::string profileOut;
    /** Critical-path analysis JSON destination (empty = none). */
    std::string critpathOut;
};

/**
 * Parse the uniform bench option set; exits on --help or bad input.
 * When @p positional is non-null, bare arguments are collected there
 * (in order) instead of being rejected — the examples use this for
 * their `quickstart mp3d PREF 8`-style invocation.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv,
               std::vector<std::string> *positional = nullptr)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                prefsim_fatal("missing value for option ", arg);
            return argv[++i];
        };
        auto nextUint = [&]() -> std::uint64_t {
            const char *text = next();
            char *end = nullptr;
            const std::uint64_t value = std::strtoull(text, &end, 10);
            if (end == text || *end != '\0')
                prefsim_fatal("option ", arg,
                              " expects a non-negative integer, got '",
                              text, "'");
            return value;
        };
        if (arg == "--refs") {
            opts.params.refsPerProc = nextUint();
        } else if (arg == "--procs") {
            opts.params.numProcs = static_cast<unsigned>(nextUint());
        } else if (arg == "--seed") {
            opts.params.seed = nextUint();
        } else if (arg == "--jobs") {
            opts.sweep.jobs = static_cast<unsigned>(nextUint());
        } else if (arg == "--cache-dir") {
            opts.sweep.cacheDir = next();
        } else if (arg == "--no-cache") {
            opts.sweep.useCache = false;
        } else if (arg == "--engine") {
            const std::string name = next();
            if (name == "cycle") {
                opts.sweep.engine = SimEngine::CycleLoop;
            } else if (name == "event") {
                opts.sweep.engine = SimEngine::EventDriven;
            } else if (name == "parallel") {
                opts.sweep.engine = SimEngine::Parallel;
            } else {
                prefsim_fatal("--engine expects cycle, event or "
                              "parallel, got '",
                              name, "'");
            }
        } else if (arg == "--shards") {
            const std::uint64_t value = nextUint();
            if (value == 0 || value > 1024)
                prefsim_fatal("--shards expects 1..1024, got ", value);
            opts.sweep.shards = static_cast<unsigned>(value);
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--quiet") {
            setQuiet(true);
        } else if (arg == "--log-level") {
            const char *name = next();
            const std::optional<LogLevel> level = parseLogLevel(name);
            if (!level)
                prefsim_fatal("--log-level expects error, warn, info or "
                              "debug, got '",
                              name, "'");
            setLogThreshold(*level);
        } else if (arg == "--metrics-out") {
            opts.metricsOut = next();
            opts.sweep.metrics = true;
        } else if (arg == "--trace-out") {
            opts.traceOut = next();
            opts.sweep.tracing = true;
            opts.sweep.metrics = true;
        } else if (arg == "--sample-interval") {
            opts.sweep.sampleInterval = nextUint();
        } else if (arg == "--timeseries-out") {
            opts.timeseriesOut = next();
        } else if (arg == "--profile-out") {
            opts.profileOut = next();
            opts.sweep.profile = true;
        } else if (arg == "--critpath-out") {
            opts.critpathOut = next();
            opts.sweep.critpath = true;
        } else if (arg == "--whatif-validate") {
            opts.sweep.whatifValidate = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: " << (argc > 0 ? argv[0] : "bench")
                << " [options]\n"
                   "  --refs N         demand references per processor\n"
                   "  --procs N        processor count\n"
                   "  --seed N         workload RNG seed\n"
                   "  --jobs N         sweep worker threads "
                   "(0 = all cores; default 1)\n"
                   "  --cache-dir PATH persist results to an on-disk "
                   "cache\n"
                   "  --no-cache       ignore any --cache-dir\n"
                   "  --engine E       simulation core: event (default), "
                   "cycle (the\n"
                   "                   reference loop) or parallel (the "
                   "sharded\n"
                   "                   conservative-PDES core); "
                   "bit-identical results\n"
                   "  --shards N       worker shards per parallel-engine "
                   "simulation\n"
                   "                   (1..1024; default 1)\n"
                   "  --csv            machine-readable CSV output\n"
                   "  --quiet          suppress informational logging\n"
                   "  --log-level L    minimum severity: error, warn, "
                   "info, debug\n"
                   "  --metrics-out F  write sweep telemetry + metrics "
                   "JSON to F\n"
                   "  --trace-out F    write Chrome trace-event JSON to F "
                   "(PREFSIM_TRACING builds)\n"
                   "  --sample-interval N  interval time-series sample "
                   "every N cycles (0 = off)\n"
                   "  --timeseries-out F  write prefsim-timeseries-v1 "
                   "JSON to F\n"
                   "  --profile-out F  write prefsim-profile-v1 per-line "
                   "attribution JSON to F\n"
                   "  --critpath-out F write prefsim-critpath-v1 "
                   "critical-path JSON to F\n"
                   "  --whatif-validate  validate the infinite-bus "
                   "what-if against a\n"
                   "                   widened-bus re-simulation "
                   "(needs --critpath-out)\n";
            std::exit(0);
        } else if (positional && arg.rfind("--", 0) != 0) {
            positional->push_back(arg);
        } else {
            prefsim_fatal("unknown option ", arg,
                          " (try ", argv[0], " --help)");
        }
    }
    // Asking for the time-series file implies sampling; pick a sensible
    // default period when none was given explicitly.
    if (!opts.timeseriesOut.empty() && opts.sweep.sampleInterval == 0)
        opts.sweep.sampleInterval = 10000;
    if (opts.sweep.whatifValidate && !opts.sweep.critpath)
        prefsim_fatal("--whatif-validate requires --critpath-out");
    return opts;
}

/** A SweepEngine over the parsed options (geometry overridable). */
inline SweepEngine
makeEngine(const BenchOptions &opts,
           CacheGeometry geometry = CacheGeometry::paperDefault())
{
    return SweepEngine(opts.params, geometry, opts.sweep);
}

/**
 * Write whatever --metrics-out / --trace-out asked for. Call once,
 * after the sweep's last runPending()/run() returned. A no-op when
 * neither flag was given.
 */
inline void
emitBenchTelemetry(const BenchOptions &opts, const SweepEngine &engine)
{
    if (!opts.metricsOut.empty()) {
        std::ofstream out(opts.metricsOut,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            prefsim_warn("cannot write metrics file ", opts.metricsOut);
        } else {
            engine.writeTelemetryJson(out);
            prefsim_inform("wrote metrics to ", opts.metricsOut);
        }
    }
    if (!opts.timeseriesOut.empty()) {
        const ObsContext *obs = engine.obs();
        if (obs == nullptr || obs->timeseries.empty()) {
            prefsim_warn("--timeseries-out: no series recorded (cached "
                         "results skip simulation; rerun with --no-cache "
                         "or a fresh --cache-dir for full coverage)");
        }
        std::ofstream out(opts.timeseriesOut,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            prefsim_warn("cannot write time-series file ",
                         opts.timeseriesOut);
        } else {
            engine.writeTimeseriesJson(out);
            prefsim_inform("wrote interval time series to ",
                           opts.timeseriesOut);
        }
    }
    if (!opts.profileOut.empty()) {
        const ObsContext *obs = engine.obs();
        if (obs == nullptr || obs->profile.empty()) {
            prefsim_warn("--profile-out: no profile runs recorded");
        }
        std::ofstream out(opts.profileOut,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            prefsim_warn("cannot write profile file ", opts.profileOut);
        } else {
            engine.writeProfileJson(out);
            prefsim_inform("wrote attribution profile to ",
                           opts.profileOut);
        }
    }
    if (!opts.critpathOut.empty()) {
        const ObsContext *obs = engine.obs();
        if (obs == nullptr || obs->critpath.empty()) {
            prefsim_warn("--critpath-out: no critical-path runs recorded");
        }
        std::ofstream out(opts.critpathOut,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            prefsim_warn("cannot write critpath file ", opts.critpathOut);
        } else {
            engine.writeCritPathJson(out);
            prefsim_inform("wrote critical-path analysis to ",
                           opts.critpathOut);
        }
    }
    if (!opts.traceOut.empty()) {
        const ObsContext *obs = engine.obs();
        if (obs == nullptr || obs->tracer.numSessions() == 0) {
            prefsim_warn("--trace-out: no trace sessions recorded",
                         PREFSIM_TRACING
                             ? ""
                             : " (this binary was built without "
                               "-DPREFSIM_TRACING=ON)");
        }
        std::ofstream out(opts.traceOut,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            prefsim_warn("cannot write trace file ", opts.traceOut);
        } else if (obs != nullptr) {
            obs->tracer.exportChromeTrace(out);
            prefsim_inform("wrote Chrome trace to ", opts.traceOut,
                           " (load at https://ui.perfetto.dev)");
        }
    }
}

/** Format a measured/paper pair: "0.27 (paper 0.27)". */
inline std::string
withPaper(double measured, std::optional<double> reference, int prec = 2)
{
    std::string s = TextTable::num(measured, prec);
    if (reference)
        s += " (" + TextTable::num(*reference, prec) + ")";
    return s;
}

} // namespace prefsim

#endif // PREFSIM_BENCH_BENCH_COMMON_HH
