/**
 * @file
 * Reproduces paper Figure 1: "Total and CPU Miss Rates for the Five
 * Workloads" (8-cycle data-transfer latency).
 *
 * For every workload x prefetching strategy: the total miss rate, the
 * CPU miss rate and the adjusted CPU miss rate (excluding accesses that
 * merely wait for a prefetch already in progress).
 *
 * Expected shape (§4.2): CPU miss rates fall sharply with every
 * prefetching strategy (paper: 37-71% for PREF, 57-80% for PWS), while
 * total miss rates *increase* in all prefetching simulations.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "stats/csv.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);
    const Cycle kTransfer = 8;

    bench.enqueueGrid(allWorkloads(), {false}, allStrategies(),
                      {kTransfer});
    bench.runPending();

    if (opts.csv) {
        CsvWriter w(std::cout);
        w.row({"workload", "strategy", "total_mr", "cpu_mr",
               "adjusted_cpu_mr"});
        for (WorkloadKind wk : allWorkloads()) {
            for (Strategy s : allStrategies()) {
                const auto &r = bench.run(wk, false, s, kTransfer);
                w.row({workloadName(wk), strategyName(s),
                       TextTable::num(r.sim.totalMissRate(), 5),
                       TextTable::num(r.sim.cpuMissRate(), 5),
                       TextTable::num(r.sim.adjustedCpuMissRate(), 5)});
            }
        }
        emitBenchTelemetry(opts, bench);
        return 0;
    }

    std::cout << "=== Figure 1: miss rates at T=8 (per demand reference) "
                 "===\n\n";

    TextTable t({"workload", "strategy", "total MR", "CPU MR",
                 "adjusted CPU MR", "CPU MR vs NP", "adj MR vs NP"});
    for (WorkloadKind w : allWorkloads()) {
        const auto &np = bench.run(w, false, Strategy::NP, kTransfer);
        for (Strategy s : allStrategies()) {
            const auto &r = bench.run(w, false, s, kTransfer);
            const double cpu_vs_np =
                r.sim.cpuMissRate() / np.sim.cpuMissRate() - 1.0;
            const double adj_vs_np =
                r.sim.adjustedCpuMissRate() /
                    np.sim.adjustedCpuMissRate() -
                1.0;
            t.addRow({workloadName(w), strategyName(s),
                      TextTable::percent(r.sim.totalMissRate(), 2),
                      TextTable::percent(r.sim.cpuMissRate(), 2),
                      TextTable::percent(r.sim.adjustedCpuMissRate(), 2),
                      s == Strategy::NP
                          ? "-"
                          : TextTable::percent(cpu_vs_np, 0),
                      s == Strategy::NP
                          ? "-"
                          : TextTable::percent(adj_vs_np, 0)});
        }
        t.addRule();
    }
    t.print(std::cout);

    std::cout << "\npaper bands: PREF cuts CPU MR 37-71% (38-77% "
                 "adjusted); PWS 57-80% (59-94% adjusted); total MR "
                 "rises for every prefetching strategy.\n";
    emitBenchTelemetry(opts, bench);
    return 0;
}
