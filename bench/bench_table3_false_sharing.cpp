/**
 * @file
 * Reproduces paper Table 3: "Total Invalidation and False Sharing Miss
 * Rates".
 *
 * Expected shape (§4.4): "for most of the benchmarks, over half of the
 * invalidation misses could be attributed to false sharing."
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);
    SweepEngine wide = makeEngine(opts, CacheGeometry(32 * 1024, 64));
    const Cycle kTransfer = 8;

    bench.enqueueGrid(allWorkloads(), {false}, {Strategy::NP},
                      {kTransfer});
    bench.runPending();

    std::cout << "=== Table 3: invalidation and false-sharing miss rates "
                 "(NP, T=8) ===\n\n";

    TextTable t({"workload", "total inval MR", "total FS MR",
                 "FS / inval"});
    for (WorkloadKind w : allWorkloads()) {
        const auto &r = bench.run(w, false, Strategy::NP, kTransfer);
        const double inval = r.sim.invalidationMissRate();
        const double fs = r.sim.falseSharingMissRate();
        t.addRow({workloadName(w), TextTable::percent(inval, 2),
                  TextTable::percent(fs, 2),
                  inval > 0 ? TextTable::percent(fs / inval, 0) : "-"});
    }
    t.print(std::cout);

    std::cout << "\npaper: over half of the invalidation misses are "
                 "false sharing for most benchmarks; false sharing "
                 "rises with larger blocks:\n";
    TextTable b({"workload", "FS/inval 32B line", "FS/inval 64B line"});
    wide.enqueueGrid({WorkloadKind::Topopt, WorkloadKind::Pverify},
                     {false}, {Strategy::NP}, {kTransfer});
    wide.runPending();
    for (WorkloadKind w : {WorkloadKind::Topopt, WorkloadKind::Pverify}) {
        const auto &r32 = bench.run(w, false, Strategy::NP, kTransfer);
        const auto &r64 = wide.run(w, false, Strategy::NP, kTransfer);
        auto share = [](const ExperimentResult &r) {
            const auto m = r.sim.totalMisses();
            return m.invalidation()
                       ? static_cast<double>(m.falseSharing) /
                             static_cast<double>(m.invalidation())
                       : 0.0;
        };
        b.addRow({workloadName(w), TextTable::percent(share(r32), 0),
                  TextTable::percent(share(r64), 0)});
    }
    b.print(std::cout);
    // Telemetry covers the paper-geometry engine; the wide-line engine
    // exists only for the block-size comparison above.
    emitBenchTelemetry(opts, bench);
    return 0;
}
