/**
 * @file
 * Reproduces paper Table 4: "Miss rates for data transfer latency of 8
 * cycles for restructured programs".
 *
 * Expected shape (§4.4): restructuring slashes Topopt's invalidation
 * miss rate (paper: by ~6x) *and* its non-sharing miss rate (halved,
 * from improved locality); Pverify's gain is almost entirely the
 * false-sharing reduction (invalidation MR / 4) while its non-sharing
 * miss rate rises slightly.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);
    const Cycle kTransfer = 8;

    for (WorkloadKind w : allWorkloads()) {
        if (!hasRestructuredVariant(w))
            continue;
        bench.enqueueGrid({w}, {false, true},
                          {Strategy::NP, Strategy::PREF, Strategy::PWS},
                          {kTransfer});
    }
    bench.runPending();

    std::cout << "=== Table 4: miss rates at T=8, restructured programs "
                 "===\n\n";

    TextTable t({"workload", "strategy", "CPU MR", "total MR",
                 "total inval MR", "total FS MR", "non-sharing MR"});
    for (WorkloadKind w : allWorkloads()) {
        if (!hasRestructuredVariant(w))
            continue;
        for (bool restructured : {false, true}) {
            for (Strategy s :
                 {Strategy::NP, Strategy::PREF, Strategy::PWS}) {
                const auto &r = bench.run(w, restructured, s, kTransfer);
                const auto m = r.sim.totalMisses();
                const auto refs = r.sim.totalDemandRefs();
                t.addRow(
                    {workloadName(w) + (restructured ? "-r" : ""),
                     strategyName(s),
                     TextTable::percent(r.sim.cpuMissRate(), 2),
                     TextTable::percent(r.sim.totalMissRate(), 2),
                     TextTable::percent(r.sim.invalidationMissRate(), 2),
                     TextTable::percent(r.sim.falseSharingMissRate(), 2),
                     TextTable::percent(static_cast<double>(m.nonSharing()) /
                                            static_cast<double>(refs),
                                        2)});
            }
            t.addRule();
        }
    }
    t.print(std::cout);

    std::cout << "\nreduction factors (NP, standard -> restructured):\n";
    TextTable f({"workload", "inval MR factor", "non-sharing factor",
                 "FS factor"});
    for (WorkloadKind w : allWorkloads()) {
        if (!hasRestructuredVariant(w))
            continue;
        const auto &std_r = bench.run(w, false, Strategy::NP, kTransfer);
        const auto &res_r = bench.run(w, true, Strategy::NP, kTransfer);
        auto factor = [](double a, double b) {
            return b > 0 ? TextTable::num(a / b, 1) + "x" : "inf";
        };
        const double std_ns =
            static_cast<double>(std_r.sim.totalMisses().nonSharing());
        const double res_ns =
            static_cast<double>(res_r.sim.totalMisses().nonSharing());
        f.addRow({workloadName(w),
                  factor(std_r.sim.invalidationMissRate(),
                         res_r.sim.invalidationMissRate()),
                  factor(std_ns, res_ns),
                  factor(std_r.sim.falseSharingMissRate(),
                         res_r.sim.falseSharingMissRate())});
    }
    f.print(std::cout);
    std::cout << "\npaper: Topopt inval/6 and non-sharing/2; Pverify "
                 "inval/4 with non-sharing slightly up.\n";
    emitBenchTelemetry(opts, bench);
    return 0;
}
