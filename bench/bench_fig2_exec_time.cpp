/**
 * @file
 * Reproduces paper Figure 2: "Execution times (relative to no
 * prefetching) for the five workloads and each prefetching strategy",
 * plotted against data-bus transfer latency.
 *
 * Also prints the headline numbers of §1/§4.2: the best speedup and the
 * worst degradation across the sweep, split into PWS vs the
 * data-sharing-unaware strategies (paper: max 1.28 / min .94 without
 * PWS; max 1.39 / min .95 with PWS).
 *
 * --csv emits the series for replotting; --jobs N runs the 100-point
 * sweep on N workers.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_common.hh"
#include "stats/csv.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);

    // The full grid (NP included: it is every column's denominator) is
    // declared up front so the sweep runs as one parallel batch.
    bench.enqueueGrid(allWorkloads(), {false}, allStrategies(),
                      paperTransferLatencies());
    bench.runPending();

    std::cout << "=== Figure 2: execution time relative to NP ===\n\n";

    double best_nonpws = 10.0, worst_nonpws = 0.0;
    double best_pws = 10.0, worst_pws = 0.0;

    CsvWriter writer(std::cout);
    if (opts.csv)
        writer.row({"workload", "strategy", "transfer", "relative_time"});

    for (WorkloadKind w : allWorkloads()) {
        TextTable t({"strategy", "T=4", "T=8", "T=16", "T=32"});
        for (Strategy s : allStrategies()) {
            if (s == Strategy::NP)
                continue;
            std::vector<std::string> row = {strategyName(s)};
            for (Cycle lat : paperTransferLatencies()) {
                const double rel = bench.relativeExecTime(w, false, s, lat);
                row.push_back(TextTable::num(rel));
                if (opts.csv) {
                    writer.row({workloadName(w), strategyName(s),
                                std::to_string(lat), TextTable::num(rel, 4)});
                }
                if (s == Strategy::PWS) {
                    best_pws = std::min(best_pws, rel);
                    worst_pws = std::max(worst_pws, rel);
                } else {
                    best_nonpws = std::min(best_nonpws, rel);
                    worst_nonpws = std::max(worst_nonpws, rel);
                }
            }
            t.addRow(std::move(row));
        }
        if (!opts.csv) {
            std::cout << "--- " << workloadName(w) << " ---\n";
            t.print(std::cout);
            std::cout << "\n";
        }
    }

    std::cout << "headline: best/worst relative time without PWS = "
              << TextTable::num(best_nonpws) << " / "
              << TextTable::num(worst_nonpws)
              << "  (paper: 1/1.28=0.78 best, 1/0.94=1.06 worst)\n"
              << "          best/worst relative time with PWS    = "
              << TextTable::num(best_pws) << " / "
              << TextTable::num(worst_pws)
              << "  (paper: 1/1.39=0.72 best, 1/0.95=1.05 worst)\n";
    emitBenchTelemetry(opts, bench);
    return 0;
}
