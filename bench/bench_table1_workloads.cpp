/**
 * @file
 * Reproduces paper Table 1: "Workload used in experiments".
 *
 * The paper's table lists each program's data set, shared-data size and
 * process count (the scanned copy is partially illegible; see DESIGN.md
 * substitution 3). We report the measurable equivalents for the
 * synthetic workloads: reference volume, read/write mix, footprints,
 * sharing content and synchronisation density.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "trace/trace_stats.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);
    const WorkloadParams &params = bench.params();

    std::cout << "=== Table 1: workload characteristics ("
              << params.numProcs << " processes, ~" << params.refsPerProc
              << " refs/proc requested) ===\n\n";

    TextTable t({"program", "refs/proc", "writes", "footprint KB",
                 "shared KB", "wr-shared KB", "wr-shared refs", "locks",
                 "barriers"});
    for (WorkloadKind w : allWorkloads()) {
        const ParallelTrace &trace = bench.baseTrace(w, false);
        const TraceStats s =
            computeTraceStats(trace, bench.geometry().lineBytes());
        t.addRow({workloadName(w),
                  TextTable::count(s.totalRefs / s.numProcs),
                  TextTable::percent(s.writeFraction()),
                  TextTable::num(s.footprintBytes / 1024.0, 1),
                  TextTable::num(s.sharedFootprintBytes / 1024.0, 1),
                  TextTable::num(s.writeSharedFootprintBytes / 1024.0, 1),
                  TextTable::percent(s.writeSharedRefFraction),
                  TextTable::count(s.lockAcquires),
                  TextTable::count(s.barriersCrossed)});
    }
    t.print(std::cout);

    std::cout << "\nRestructured variants (Tables 4/5 inputs):\n";
    TextTable r({"program", "footprint KB", "wr-shared KB",
                 "wr-shared refs"});
    for (WorkloadKind w : allWorkloads()) {
        if (!hasRestructuredVariant(w))
            continue;
        const ParallelTrace &trace = bench.baseTrace(w, true);
        const TraceStats s =
            computeTraceStats(trace, bench.geometry().lineBytes());
        r.addRow({trace.name,
                  TextTable::num(s.footprintBytes / 1024.0, 1),
                  TextTable::num(s.writeSharedFootprintBytes / 1024.0, 1),
                  TextTable::percent(s.writeSharedRefFraction)});
    }
    r.print(std::cout);
    emitBenchTelemetry(opts, bench);
    return 0;
}
