/**
 * @file
 * Reproduces the paper's §4.2 processor-utilisation analysis.
 *
 * Average per-processor utilisation before prefetching, at the fastest
 * (4-cycle) and slowest (32-cycle) data bus. The paper uses these as
 * upper bounds on any latency-hiding technique's speedup: Water at .82
 * can gain at most ~1.2x, while Mp3d (.39 to .22) has room for 2.5-4.5x.
 * Also reports NP CPU miss rates (the other calibration anchor) and the
 * restructured variants' utilisation (§4.4: Topopt-R reaches .77-.80).
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "core/paper_reference.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);

    bench.enqueueGrid(allWorkloads(), {false}, {Strategy::NP}, {4, 32});
    for (WorkloadKind w : allWorkloads()) {
        if (hasRestructuredVariant(w))
            bench.enqueueGrid({w}, {true}, {Strategy::NP}, {4, 32});
    }
    bench.runPending();

    std::cout << "=== Processor utilization before prefetching (4.2) "
                 "(measured, paper value in parentheses) ===\n\n";

    TextTable t({"workload", "util @T=4", "util @T=32", "cpu MR @T=4",
                 "inval/cpu", "headroom (1/util)"});
    for (WorkloadKind w : allWorkloads()) {
        const auto ref = paper::procUtilization(w);
        const auto &fast = bench.run(w, false, Strategy::NP, 4);
        const auto &slow = bench.run(w, false, Strategy::NP, 32);
        const auto misses = fast.sim.totalMisses();
        const double inval_share =
            misses.cpu() ? static_cast<double>(misses.invalidation()) /
                               static_cast<double>(misses.cpu())
                         : 0.0;
        t.addRow({workloadName(w),
                  withPaper(fast.sim.avgProcUtilization(), ref.fastBus),
                  withPaper(slow.sim.avgProcUtilization(), ref.slowBus),
                  TextTable::percent(fast.sim.cpuMissRate()),
                  TextTable::percent(inval_share),
                  TextTable::num(1.0 / fast.sim.avgProcUtilization(), 2)});
    }
    t.addRule();
    for (WorkloadKind w : allWorkloads()) {
        if (!hasRestructuredVariant(w))
            continue;
        const auto &fast = bench.run(w, true, Strategy::NP, 4);
        const auto &slow = bench.run(w, true, Strategy::NP, 32);
        const auto misses = fast.sim.totalMisses();
        const double inval_share =
            misses.cpu() ? static_cast<double>(misses.invalidation()) /
                               static_cast<double>(misses.cpu())
                         : 0.0;
        std::optional<double> ref_fast, ref_slow;
        if (w == WorkloadKind::Topopt) {
            ref_fast = paper::procUtilizationRestructuredTopopt().fastBus;
            ref_slow = paper::procUtilizationRestructuredTopopt().slowBus;
        }
        t.addRow({workloadName(w) + "-r",
                  withPaper(fast.sim.avgProcUtilization(), ref_fast),
                  withPaper(slow.sim.avgProcUtilization(), ref_slow),
                  TextTable::percent(fast.sim.cpuMissRate()),
                  TextTable::percent(inval_share),
                  TextTable::num(1.0 / fast.sim.avgProcUtilization(), 2)});
    }
    t.print(std::cout);
    emitBenchTelemetry(opts, bench);
    return 0;
}
