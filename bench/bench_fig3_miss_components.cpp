/**
 * @file
 * Reproduces paper Figure 3: "Sources of CPU Misses in Topopt, Pverify
 * and Mp3d" (8-cycle data-transfer latency).
 *
 * For every strategy, the CPU misses split into the paper's five
 * categories: non-sharing not-prefetched, invalidation not-prefetched,
 * non-sharing prefetched (covered but replaced before use),
 * invalidation prefetched (covered but invalidated before use), and
 * prefetch-in-progress.
 *
 * Expected shape (§4.3-4.4): invalidation misses are untouched by the
 * uniprocessor-style strategies and become the dominant residual; LPD
 * trades prefetch-in-progress misses for conflict misses; only PWS
 * attacks the invalidation component.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "stats/csv.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);
    const Cycle kTransfer = 8;

    bench.enqueueGrid({WorkloadKind::Topopt, WorkloadKind::Pverify,
                       WorkloadKind::Mp3d},
                      {false}, allStrategies(), {kTransfer});
    bench.runPending();

    if (opts.csv) {
        CsvWriter w(std::cout);
        w.row({"workload", "strategy", "non_sharing_not_pf",
               "inval_not_pf", "non_sharing_pf", "inval_pf",
               "pf_in_progress"});
        for (WorkloadKind wk :
             {WorkloadKind::Topopt, WorkloadKind::Pverify,
              WorkloadKind::Mp3d}) {
            for (Strategy s : allStrategies()) {
                const auto &r = bench.run(wk, false, s, kTransfer);
                const MissBreakdown m = r.sim.totalMisses();
                const auto refs =
                    static_cast<double>(r.sim.totalDemandRefs());
                auto rate = [&](std::uint64_t n) {
                    return TextTable::num(static_cast<double>(n) / refs,
                                          6);
                };
                w.row({workloadName(wk), strategyName(s),
                       rate(m.nonSharingNotPrefetched),
                       rate(m.invalNotPrefetched),
                       rate(m.nonSharingPrefetched),
                       rate(m.invalPrefetched),
                       rate(m.prefetchInProgress)});
            }
        }
        emitBenchTelemetry(opts, bench);
        return 0;
    }

    std::cout << "=== Figure 3: CPU-miss components at T=8 "
                 "(% of demand references) ===\n\n";

    const WorkloadKind figure_workloads[] = {
        WorkloadKind::Topopt, WorkloadKind::Pverify, WorkloadKind::Mp3d};

    for (WorkloadKind w : figure_workloads) {
        std::cout << "--- " << workloadName(w) << " ---\n";
        TextTable t({"strategy", "non-shr !pf", "inval !pf",
                     "non-shr pf'd", "inval pf'd", "pf-in-progress",
                     "total CPU"});
        for (Strategy s : allStrategies()) {
            const auto &r = bench.run(w, false, s, kTransfer);
            const MissBreakdown m = r.sim.totalMisses();
            const auto refs = r.sim.totalDemandRefs();
            auto pct = [&](std::uint64_t n) {
                return TextTable::percent(static_cast<double>(n) /
                                              static_cast<double>(refs),
                                          2);
            };
            t.addRow({strategyName(s), pct(m.nonSharingNotPrefetched),
                      pct(m.invalNotPrefetched),
                      pct(m.nonSharingPrefetched), pct(m.invalPrefetched),
                      pct(m.prefetchInProgress), pct(m.cpu())});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    // The figure's companion observation in §4.3: LPD eliminates most
    // prefetch-in-progress misses but pays in conflict misses.
    std::cout << "LPD check (paper 4.3): prefetch-in-progress misses "
                 "shrink vs PREF, conflict (non-sharing) misses grow:\n";
    TextTable t({"workload", "PIP PREF", "PIP LPD", "non-shr PREF",
                 "non-shr LPD"});
    for (WorkloadKind w : figure_workloads) {
        const auto &pref = bench.run(w, false, Strategy::PREF, kTransfer);
        const auto &lpd = bench.run(w, false, Strategy::LPD, kTransfer);
        t.addRow({workloadName(w),
                  TextTable::count(
                      pref.sim.totalMisses().prefetchInProgress),
                  TextTable::count(
                      lpd.sim.totalMisses().prefetchInProgress),
                  TextTable::count(pref.sim.totalMisses().nonSharing()),
                  TextTable::count(lpd.sim.totalMisses().nonSharing())});
    }
    t.print(std::cout);
    emitBenchTelemetry(opts, bench);
    return 0;
}
