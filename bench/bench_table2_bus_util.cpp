/**
 * @file
 * Reproduces paper Table 2: "Selected bus utilizations".
 *
 * Data-bus utilisation for every workload under every prefetching
 * strategy across the data-transfer latency sweep {4, 8, 16, 32}.
 * The paper's transcribed values are printed alongside for comparison.
 *
 * Expected shape: utilisation rises with prefetching for every workload
 * and every latency (prefetching always increases bus demand), and the
 * miss-heavy workloads (Mp3d, Pverify) saturate on slow buses.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "stats/csv.hh"
#include "core/paper_reference.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);

    bench.enqueueGrid(allWorkloads(), {false}, allStrategies(),
                      paperTransferLatencies());
    bench.runPending();

    if (opts.csv) {
        CsvWriter w(std::cout);
        w.row({"workload", "strategy", "transfer", "bus_util",
               "paper_bus_util"});
        for (WorkloadKind wk : allWorkloads()) {
            for (Strategy s : allStrategies()) {
                for (Cycle lat : paperTransferLatencies()) {
                    const auto &r = bench.run(wk, false, s, lat);
                    const auto ref = paper::busUtilization(wk, s, lat);
                    w.row({workloadName(wk), strategyName(s),
                           std::to_string(lat),
                           TextTable::num(r.sim.busUtilization(), 4),
                           ref ? TextTable::num(*ref, 2) : ""});
                }
            }
        }
        emitBenchTelemetry(opts, bench);
        return 0;
    }

    std::cout << "=== Table 2: data-bus utilization "
                 "(measured, paper value in parentheses) ===\n\n";

    TextTable t({"workload", "strategy", "T=4", "T=8", "T=16", "T=32"});
    for (WorkloadKind w : allWorkloads()) {
        for (Strategy s : allStrategies()) {
            std::vector<std::string> row = {workloadName(w),
                                            strategyName(s)};
            for (Cycle lat : paperTransferLatencies()) {
                const auto &r = bench.run(w, false, s, lat);
                row.push_back(withPaper(r.sim.busUtilization(),
                                        paper::busUtilization(w, s, lat)));
            }
            t.addRow(std::move(row));
        }
        t.addRule();
    }
    t.print(std::cout);
    emitBenchTelemetry(opts, bench);
    return 0;
}
