/**
 * @file
 * Reproduces paper Table 5: "Relative Execution Times for Restructured
 * Programs".
 *
 * Expected shape (§4.4): after restructuring, Topopt's cache behaviour
 * is good enough that prefetching has little left to win; Pverify
 * benefits more from prefetching (until the bus saturates), and plain
 * PREF approaches the write-shared-tailored PWS for both programs.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "stats/table.hh"

using namespace prefsim;

int
main(int argc, char **argv)
{
    const BenchOptions opts = parseBenchArgs(argc, argv);
    SweepEngine bench = makeEngine(opts);

    for (WorkloadKind w : allWorkloads()) {
        if (!hasRestructuredVariant(w))
            continue;
        bench.enqueueGrid({w}, {false, true}, allStrategies(),
                          paperTransferLatencies());
    }
    bench.runPending();

    std::cout << "=== Table 5: relative execution times, restructured "
                 "programs ===\n(execution time relative to the "
                 "restructured program's own NP run)\n\n";

    for (WorkloadKind w : allWorkloads()) {
        if (!hasRestructuredVariant(w))
            continue;
        std::cout << "--- " << workloadName(w) << "-r ---\n";
        TextTable t({"strategy", "T=4", "T=8", "T=16", "T=32"});
        for (Strategy s : allStrategies()) {
            if (s == Strategy::NP)
                continue;
            std::vector<std::string> row = {strategyName(s)};
            for (Cycle lat : paperTransferLatencies())
                row.push_back(TextTable::num(
                    bench.relativeExecTime(w, true, s, lat)));
            t.addRow(std::move(row));
        }
        t.print(std::cout);

        // Restructuring's own benefit (same strategy, layouts compared).
        TextTable g({"metric", "T=4", "T=8", "T=16", "T=32"});
        std::vector<std::string> row = {"restructured NP vs standard NP"};
        for (Cycle lat : paperTransferLatencies()) {
            const auto &std_r = bench.run(w, false, Strategy::NP, lat);
            const auto &res_r = bench.run(w, true, Strategy::NP, lat);
            row.push_back(
                TextTable::num(static_cast<double>(res_r.sim.cycles) /
                               static_cast<double>(std_r.sim.cycles)));
        }
        g.addRow(std::move(row));
        g.print(std::cout);

        // §4.4: PREF approaches PWS once false sharing is gone.
        std::cout << "PREF/PWS gap at T=4: standard "
                  << TextTable::num(
                         bench.relativeExecTime(w, false, Strategy::PREF,
                                                4) /
                         bench.relativeExecTime(w, false, Strategy::PWS,
                                                4),
                         3)
                  << ", restructured "
                  << TextTable::num(
                         bench.relativeExecTime(w, true, Strategy::PREF,
                                                4) /
                         bench.relativeExecTime(w, true, Strategy::PWS, 4),
                         3)
                  << " (1.0 = identical)\n\n";
    }

    // Restructured Topopt's §4.4 processor utilisation claim (.77-.80).
    const auto &fast = bench.run(WorkloadKind::Topopt, true,
                                 Strategy::NP, 4);
    const auto &slow = bench.run(WorkloadKind::Topopt, true,
                                 Strategy::NP, 32);
    std::cout << "restructured topopt processor utilization: "
              << TextTable::num(fast.sim.avgProcUtilization()) << " @T=4, "
              << TextTable::num(slow.sim.avgProcUtilization())
              << " @T=32 (paper: .80 / .77)\n";
    emitBenchTelemetry(opts, bench);
    return 0;
}
