/**
 * @file
 * google-benchmark microbenchmarks of the simulator's components:
 * trace generation, the prefetch pass, and the cycle loop itself.
 *
 * These measure prefsim (the tool), not the paper's system — they keep
 * the reproduction's own performance honest so full sweeps stay fast.
 */

#include <benchmark/benchmark.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "prefetch/filter_cache.hh"
#include "prefetch/inserter.hh"
#include "sim/simulator.hh"
#include "trace/workload.hh"

using namespace prefsim;

namespace
{

WorkloadParams
benchParams(std::uint64_t refs)
{
    WorkloadParams p;
    p.numProcs = 8;
    p.refsPerProc = refs;
    p.seed = 1;
    return p;
}

void
BM_GenerateWorkload(benchmark::State &state)
{
    const auto kind = static_cast<WorkloadKind>(state.range(0));
    const WorkloadParams p = benchParams(30000);
    std::uint64_t refs = 0;
    for (auto _ : state) {
        const ParallelTrace t = generateWorkload(kind, p);
        refs += t.totalDemandRefs();
        benchmark::DoNotOptimize(t.numProcs());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
    state.SetLabel(workloadName(kind));
}

void
BM_FilterCache(benchmark::State &state)
{
    FilterCache f(CacheGeometry::paperDefault());
    Rng rng(42);
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.access(rng.below(1 << 20)));
        ++accesses;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}

void
BM_AnnotatePref(benchmark::State &state)
{
    const ParallelTrace t =
        generateWorkload(WorkloadKind::Mp3d, benchParams(30000));
    std::uint64_t refs = 0;
    for (auto _ : state) {
        const AnnotatedTrace a =
            annotateTrace(t, Strategy::PREF, CacheGeometry::paperDefault());
        refs += a.stats.demandRefs;
        benchmark::DoNotOptimize(a.stats.inserted);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}

void
BM_AnnotatePws(benchmark::State &state)
{
    const ParallelTrace t =
        generateWorkload(WorkloadKind::Pverify, benchParams(30000));
    std::uint64_t refs = 0;
    for (auto _ : state) {
        const AnnotatedTrace a =
            annotateTrace(t, Strategy::PWS, CacheGeometry::paperDefault());
        refs += a.stats.demandRefs;
        benchmark::DoNotOptimize(a.stats.inserted);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}

void
BM_SimulateCycleLoop(benchmark::State &state)
{
    const auto kind = static_cast<WorkloadKind>(state.range(0));
    const ParallelTrace t = generateWorkload(kind, benchParams(20000));
    SimConfig cfg;
    cfg.timing.dataTransfer = 8;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const SimStats s = simulate(t, cfg);
        cycles += s.cycles;
        benchmark::DoNotOptimize(s.cycles);
    }
    // items = simulated cycles per wall second: the simulator's speed.
    state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
    state.SetLabel(workloadName(kind));
}

void
BM_SimulateEngine(benchmark::State &state)
{
    const ParallelTrace t =
        generateWorkload(WorkloadKind::Mp3d, benchParams(20000));
    SimConfig cfg;
    cfg.timing.dataTransfer = 8;
    cfg.engine = static_cast<SimEngine>(state.range(0));
    cfg.shards = static_cast<unsigned>(state.range(1));
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const SimStats s = simulate(t, cfg);
        cycles += s.cycles;
        benchmark::DoNotOptimize(s.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
    std::string label = cfg.engine == SimEngine::CycleLoop ? "cycle"
                        : cfg.engine == SimEngine::EventDriven
                            ? "event"
                            : "parallel-" + std::to_string(cfg.shards);
    state.SetLabel(label);
}

void
BM_SimulateSaturatedBus(benchmark::State &state)
{
    const ParallelTrace t =
        generateWorkload(WorkloadKind::Mp3d, benchParams(20000));
    SimConfig cfg;
    cfg.timing.dataTransfer = 32;
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        const SimStats s = simulate(t, cfg);
        cycles += s.cycles;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}

void
BM_SweepEngineGrid(benchmark::State &state)
{
    const WorkloadParams p = benchParams(20000);
    SweepOptions so;
    so.jobs = static_cast<unsigned>(state.range(0));
    std::uint64_t sims = 0;
    for (auto _ : state) {
        SweepEngine engine(p, CacheGeometry::paperDefault(), so);
        engine.enqueueGrid({WorkloadKind::Mp3d, WorkloadKind::Topopt},
                           {false}, {Strategy::NP, Strategy::PREF},
                           {4, 32});
        engine.runPending();
        sims += engine.counters().simulationsRun;
    }
    // items = experiment points per wall second at this worker count.
    state.SetItemsProcessed(static_cast<std::int64_t>(sims));
}

} // namespace

BENCHMARK(BM_GenerateWorkload)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FilterCache);
BENCHMARK(BM_AnnotatePref)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnnotatePws)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateCycleLoop)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSaturatedBus)->Unit(benchmark::kMillisecond);
// Engine cross-section: {engine, shards}. Same simulated cycles per
// iteration by the bit-identity contract, so items/s compare directly.
BENCHMARK(BM_SimulateEngine)
    ->Args({0, 1}) // cycle
    ->Args({1, 1}) // event
    ->Args({2, 1}) // parallel, single-threaded
    ->Args({2, 8}) // parallel, one shard per processor
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepEngineGrid)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    prefsim::setQuiet(true);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
